"""Estimating a query path's joint distribution from a decomposition (Section 4.1.2).

Given a decomposition ``DE = (P_1, ..., P_k)`` and the instantiated (joint)
distributions of its paths, Equation 2 estimates the query path's joint
distribution as the product of the element distributions divided by the
product of the distributions of the shared (separator) paths between
consecutive elements.

Materialising the full joint over a long query path would require a
hyper-bucket grid that grows exponentially with the path cardinality, so we
exploit the chain structure of decompositions (elements ordered along the
path, every separator shared only with the immediately preceding element):
the distribution of the *accumulated* cost is propagated left to right
together with the joint distribution over the current separator's edges.
This is the exact junction-tree elimination of the decomposable model of
Equation 2 under the uniform-within-bucket histogram semantics, with one
engineering addition: the accumulated-cost dimension is periodically
re-bucketed (the same rearrangement used in Section 4.2) so the cell count
stays bounded.  The state is held in ``numpy`` arrays so long corridors
with many overlapping high-rank variables stay fast.

The propagation corresponds to the paper's "JC" (joint computation) step in
the Figure 17 run-time breakdown; the final collapse into a one-dimensional
cost histogram lives in :mod:`repro.core.marginal` ("MC").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..exceptions import EstimationError
from ..histograms import kernels
from ..histograms.multivariate import MultiHistogram
from ..histograms.univariate import Bucket, Histogram1D
from .decomposition import Decomposition

#: Minimum width used when an accumulated-cost range is still degenerate.
_MIN_WIDTH = 1e-9

#: Cells with probability below this (after each step) are pruned.
_PRUNE_THRESHOLD = 1e-9


@dataclass
class _State:
    """Vectorised propagation state.

    ``agg_low`` / ``agg_high`` bound the accumulated cost of all edges whose
    cost has already been "released"; ``sep_low`` / ``sep_high`` hold the
    bucket bounds of each current-separator edge (columns aligned with
    ``sep_ids``); ``prob`` is the per-cell probability.
    """

    agg_low: np.ndarray
    agg_high: np.ndarray
    sep_low: np.ndarray
    sep_high: np.ndarray
    prob: np.ndarray
    sep_ids: tuple[int, ...]

    @property
    def n_cells(self) -> int:
        return int(self.prob.shape[0])


@dataclass(frozen=True, eq=False)
class PropagatedJoint:
    """The result of propagating Equation 2 along a decomposition.

    The accumulated-cost cells are held as contiguous arrays
    (``cell_lows`` / ``cell_highs`` / ``cell_probs``); the object-level
    ``weighted_buckets`` view materialises :class:`Bucket` pairs on demand
    for paper-facing code.  Collapsed cost histograms are memoised per
    ``max_buckets``, so a batch of budget queries that share one cached
    decomposition runs the MC kernel exactly once.
    """

    decomposition: Decomposition
    cell_lows: np.ndarray
    cell_highs: np.ndarray
    cell_probs: np.ndarray
    entropy: float
    n_cells_processed: int
    _collapse_cache: dict[int | None, Histogram1D] = field(
        default_factory=dict, repr=False, compare=False
    )

    @cached_property
    def weighted_buckets(self) -> tuple[tuple[Bucket, float], ...]:
        """Object-level ``(Bucket, probability)`` view of the cost cells.

        Materialised on first access and cached on the instance.
        """
        return tuple(
            (Bucket(float(low), float(high)), float(prob))
            for low, high, prob in zip(self.cell_lows, self.cell_highs, self.cell_probs)
        )

    @property
    def nbytes(self) -> int:
        """Actual bytes of the accumulated-cost cell arrays (true footprint)."""
        return int(self.cell_lows.nbytes + self.cell_highs.nbytes + self.cell_probs.nbytes)

    def cost_histogram(self, max_buckets: int | None = 64) -> Histogram1D:
        """Collapse into the path's univariate cost distribution (Section 4.2).

        The result is cached on the instance: re-collapsing a cached
        propagated joint (the estimation service's decomposition-cache hit
        path) is a dictionary lookup, not a kernel invocation.
        """
        cached = self._collapse_cache.get(max_buckets)
        if cached is None:
            from .marginal import collapse_cells_to_cost_histogram

            cached = collapse_cells_to_cost_histogram(
                self.cell_lows, self.cell_highs, self.cell_probs, max_buckets=max_buckets
            )
            self._collapse_cache[max_buckets] = cached
        return cached


def decomposition_entropy(decomposition: Decomposition) -> float:
    """The entropy ``H_DE`` of the estimated joint distribution (Theorem 2).

    ``H_DE = sum_i H(C_{P_i}) - sum_j H(C_{P_j ∩ P_{j+1}})`` where the
    separator entropies are taken from the marginal of the later element's
    joint distribution (consistent with the conditional factorisation used
    by the propagation).
    """
    total = 0.0
    for element in decomposition.elements:
        total += element.variable.entropy()
    for later_element, separator in zip(decomposition.elements[1:], decomposition.separators()):
        if separator is None:
            continue
        joint = later_element.variable.joint()
        total -= joint.marginal(list(separator.edge_ids)).entropy()
    return total


def propagate_joint(
    decomposition: Decomposition,
    max_aggregate_buckets: int = 24,
    max_state_cells: int = 4096,
) -> PropagatedJoint:
    """Propagate Equation 2 along the decomposition and return the accumulated cost cells."""
    if max_aggregate_buckets < 1:
        raise EstimationError("max_aggregate_buckets must be >= 1")
    elements = decomposition.elements
    separators = decomposition.separators()
    n_elements = len(elements)
    n_cells_processed = 0

    state = _initial_state(elements[0].variable.joint(), _separator_ids(separators, 0, n_elements))
    n_cells_processed += state.n_cells
    state = _consolidate(state, max_aggregate_buckets, max_state_cells)

    for index in range(1, n_elements):
        factor = elements[index].variable.joint()
        sep_next_ids = _separator_ids(separators, index, n_elements)
        state = _propagate_step(state, factor, sep_next_ids)
        n_cells_processed += state.n_cells
        state = _consolidate(state, max_aggregate_buckets, max_state_cells)

    highs = np.maximum(state.agg_high, state.agg_low + _MIN_WIDTH)
    keep = state.prob > 0.0
    if not np.any(keep):
        raise EstimationError("joint propagation produced no probability mass")
    return PropagatedJoint(
        decomposition=decomposition,
        cell_lows=state.agg_low[keep],
        cell_highs=highs[keep],
        cell_probs=state.prob[keep],
        entropy=decomposition_entropy(decomposition),
        n_cells_processed=n_cells_processed,
    )


# ---------------------------------------------------------------------- #
# Internals
# ---------------------------------------------------------------------- #
def _separator_ids(separators, index: int, n_elements: int) -> tuple[int, ...]:
    """Edge ids of the separator after element ``index`` (empty for the last element)."""
    if index >= n_elements - 1:
        return ()
    separator = separators[index]
    return separator.edge_ids if separator is not None else ()


def _cell_bounds(joint: MultiHistogram, dims: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell bucket lower/upper bounds of the given dims, shape (n_cells, len(dims))."""
    n_cells = joint.n_hyper_buckets()
    lows = np.zeros((n_cells, len(dims)))
    highs = np.zeros((n_cells, len(dims)))
    indices = joint.cell_indices
    for column, dim in enumerate(dims):
        axis = joint.axis_of(dim)
        edges = np.asarray(joint.boundaries_of(dim))
        lows[:, column] = edges[indices[:, axis]]
        highs[:, column] = edges[indices[:, axis] + 1]
    return lows, highs


def _initial_state(joint: MultiHistogram, sep_ids: tuple[int, ...]) -> _State:
    """Turn the first element's joint histogram into the propagation state."""
    released_dims = [dim for dim in joint.dims if dim not in sep_ids]
    release_low, release_high = _cell_bounds(joint, released_dims)
    sep_low, sep_high = _cell_bounds(joint, list(sep_ids))
    return _State(
        agg_low=release_low.sum(axis=1),
        agg_high=release_high.sum(axis=1),
        sep_low=sep_low,
        sep_high=sep_high,
        prob=np.asarray(joint.cell_probabilities, dtype=float).copy(),
        sep_ids=sep_ids,
    )


def _propagate_step(
    state: _State,
    factor: MultiHistogram,
    sep_next_ids: tuple[int, ...],
) -> _State:
    """Absorb one more decomposition element into the propagation state."""
    sep_prev_ids = state.sep_ids
    sep_prev_set = set(sep_prev_ids)
    sep_next_set = set(sep_next_ids)

    factor_prob = np.asarray(factor.cell_probabilities, dtype=float)
    n_factor_cells = factor_prob.shape[0]

    if not sep_prev_ids and not sep_next_ids:
        # Separator-free step (disjoint consecutive elements, the dominant
        # case on sparse graphs): Equation 2 degenerates to an independent
        # convolution, so skip the grouping/weighting machinery entirely.
        release_low, release_high = _cell_bounds(factor, list(factor.dims))
        factor_low = release_low.sum(axis=1)
        factor_high = release_high.sum(axis=1)
        new_prob = (state.prob[:, None] * factor_prob[None, :]).reshape(-1)
        keep = new_prob > _PRUNE_THRESHOLD
        if not np.any(keep):
            keep = new_prob > 0.0
        if not np.any(keep):
            raise EstimationError("joint propagation lost all probability mass")
        new_prob = new_prob[keep]
        n_kept = new_prob.shape[0]
        return _State(
            agg_low=(state.agg_low[:, None] + factor_low[None, :]).reshape(-1)[keep],
            agg_high=(state.agg_high[:, None] + factor_high[None, :]).reshape(-1)[keep],
            sep_low=np.zeros((n_kept, 0)),
            sep_high=np.zeros((n_kept, 0)),
            prob=new_prob / new_prob.sum(),
            sep_ids=(),
        )

    # Group the factor's cells by their bucket indices on the previous
    # separator's dimensions; the group masses are the denominators of Eq. 2.
    if sep_prev_ids:
        prev_axes = [factor.axis_of(dim) for dim in sep_prev_ids]
        prev_index_matrix = np.asarray(factor.cell_indices)[:, prev_axes]
        group_keys, group_id = np.unique(prev_index_matrix, axis=0, return_inverse=True)
        n_groups = group_keys.shape[0]
        group_mass = np.zeros(n_groups)
        np.add.at(group_mass, group_id, factor_prob)
    else:
        group_keys = np.zeros((1, 0), dtype=int)
        group_id = np.zeros(n_factor_cells, dtype=int)
        group_mass = np.array([1.0])
        n_groups = 1

    conditional = factor_prob / group_mass[group_id]

    # Overlap weights between the state's separator buckets and the factor's
    # separator bucket groups: shape (n_state, n_groups).
    n_state = state.n_cells
    if sep_prev_ids:
        weights = np.ones((n_state, n_groups))
        for column, dim in enumerate(sep_prev_ids):
            edges = np.asarray(factor.boundaries_of(dim))
            group_low = edges[group_keys[:, column]]
            group_high = edges[group_keys[:, column] + 1]
            state_low = state.sep_low[:, column][:, None]
            state_high = state.sep_high[:, column][:, None]
            overlap = np.clip(
                np.minimum(state_high, group_high[None, :]) - np.maximum(state_low, group_low[None, :]),
                0.0,
                None,
            )
            widths = np.maximum(state_high - state_low, _MIN_WIDTH)
            weights *= overlap / widths
        row_totals = weights.sum(axis=1, keepdims=True)
        fallback = (group_mass / group_mass.sum())[None, :]
        weights = np.where(row_totals > 0.0, weights / np.maximum(row_totals, _MIN_WIDTH), fallback)
    else:
        weights = np.ones((n_state, 1))

    # Probability of each (state cell, factor cell) combination.
    combined_prob = (state.prob[:, None] * weights[:, group_id]) * conditional[None, :]

    # Accumulated-cost contributions.
    state_keep_mask = np.array([dim in sep_next_set for dim in sep_prev_ids], dtype=bool)
    if sep_prev_ids:
        state_release_low = state.agg_low + (state.sep_low[:, ~state_keep_mask]).sum(axis=1)
        state_release_high = state.agg_high + (state.sep_high[:, ~state_keep_mask]).sum(axis=1)
    else:
        state_release_low = state.agg_low
        state_release_high = state.agg_high

    factor_new_dims = [dim for dim in factor.dims if dim not in sep_prev_set]
    factor_release_dims = [dim for dim in factor_new_dims if dim not in sep_next_set]
    release_low, release_high = _cell_bounds(factor, factor_release_dims)
    factor_release_low = release_low.sum(axis=1)
    factor_release_high = release_high.sum(axis=1)

    next_sep_low, next_sep_high = _cell_bounds(factor, list(sep_next_ids))

    new_agg_low = (state_release_low[:, None] + factor_release_low[None, :]).reshape(-1)
    new_agg_high = (state_release_high[:, None] + factor_release_high[None, :]).reshape(-1)
    new_prob = combined_prob.reshape(-1)
    new_sep_low = np.tile(next_sep_low, (n_state, 1))
    new_sep_high = np.tile(next_sep_high, (n_state, 1))

    keep = new_prob > _PRUNE_THRESHOLD
    if not np.any(keep):
        keep = new_prob > 0.0
    if not np.any(keep):
        raise EstimationError("joint propagation lost all probability mass")
    new_prob = new_prob[keep]
    new_prob = new_prob / new_prob.sum()
    return _State(
        agg_low=new_agg_low[keep],
        agg_high=new_agg_high[keep],
        sep_low=new_sep_low[keep],
        sep_high=new_sep_high[keep],
        prob=new_prob,
        sep_ids=sep_next_ids,
    )


def _consolidate(state: _State, max_aggregate_buckets: int, max_state_cells: int) -> _State:
    """Bound the state size by re-bucketing the accumulated-cost dimension.

    Cells are grouped by their separator bucket combination; every group's
    accumulated-cost ranges are rearranged into disjoint cells and, where
    the rearranged group exceeds ``max_aggregate_buckets`` cells, merged
    onto an equal-width grid.  All groups are processed by one batched
    kernel pass (:func:`repro.histograms.kernels.grouped_rearrange_coarsen`)
    rather than a per-group Python loop.  If the state is still too large
    afterwards, the lowest-probability cells are pruned (and the remainder
    renormalised).
    """
    if not np.any(state.prob > 0.0):
        raise EstimationError("joint propagation lost all probability mass")
    n_sep = state.sep_low.shape[1] if state.sep_low.ndim == 2 else 0
    if n_sep == 0:
        # One group only: rearrange/coarsen directly, skipping the grouped
        # kernel's windowing machinery (and, matching it, leave states
        # already within the cap untouched).
        if state.n_cells <= max_aggregate_buckets:
            new_state = state
        else:
            highs = np.maximum(state.agg_high, state.agg_low + _MIN_WIDTH)
            cells = kernels.rearrange(state.agg_low, highs, state.prob, normalize=False)
            cells = kernels.truncate_to_max_buckets(*cells, max_aggregate_buckets)
            new_state = _State(
                agg_low=cells[0],
                agg_high=cells[1],
                sep_low=np.zeros((cells[2].shape[0], 0)),
                sep_high=np.zeros((cells[2].shape[0], 0)),
                prob=cells[2],
                sep_ids=state.sep_ids,
            )
        return _bound_and_normalise(new_state, max_state_cells)

    combined = np.concatenate([state.sep_low, state.sep_high], axis=1)
    _, group_labels = np.unique(np.round(combined, 9), axis=0, return_inverse=True)
    group_labels = np.asarray(group_labels).ravel()
    n_groups = int(group_labels.max()) + 1

    # First original row of each group, for re-expanding the separator
    # columns (reversed fancy assignment keeps the earliest index).
    representative = np.zeros(n_groups, dtype=np.int64)
    representative[group_labels[::-1]] = np.arange(state.n_cells - 1, -1, -1)

    highs = np.maximum(state.agg_high, state.agg_low + _MIN_WIDTH)
    out_lows, out_highs, out_probs, out_groups = kernels.grouped_rearrange_coarsen(
        state.agg_low, highs, state.prob, group_labels, max_aggregate_buckets
    )

    rows = representative[out_groups]
    new_state = _State(
        agg_low=out_lows,
        agg_high=out_highs,
        sep_low=state.sep_low[rows],
        sep_high=state.sep_high[rows],
        prob=out_probs,
        sep_ids=state.sep_ids,
    )
    return _bound_and_normalise(new_state, max_state_cells)


def _bound_and_normalise(state: _State, max_state_cells: int) -> _State:
    """Prune the lowest-probability cells past the cap and renormalise."""
    if state.n_cells > max_state_cells:
        order = np.argsort(state.prob)[::-1][:max_state_cells]
        state = _State(
            agg_low=state.agg_low[order],
            agg_high=state.agg_high[order],
            sep_low=state.sep_low[order],
            sep_high=state.sep_high[order],
            prob=state.prob[order],
            sep_ids=state.sep_ids,
        )
    total = state.prob.sum()
    if total <= 0.0:
        raise EstimationError("joint propagation lost all probability mass")
    state = _State(
        agg_low=state.agg_low,
        agg_high=state.agg_high,
        sep_low=state.sep_low,
        sep_high=state.sep_high,
        prob=state.prob / total,
        sep_ids=state.sep_ids,
    )
    return state
