"""The paper's primary contribution: the hybrid graph and path cost estimation."""

from .variables import InstantiatedVariable
from .hybrid_graph import HybridGraph
from .instantiation import HybridGraphBuilder
from .relevance import CandidateArray, RelevantVariable, shift_and_enlarge, updated_departure_interval
from .decomposition import Decomposition, coarsest_decomposition, random_decomposition
from .joint import PropagatedJoint, decomposition_entropy, propagate_joint
from .marginal import collapse_to_cost_histogram
from .estimator import CostEstimate, PathCostEstimator
from .baselines import (
    AccuracyOptimalEstimator,
    HPBaseline,
    LegacyBaseline,
    RandomDecompositionEstimator,
)

__all__ = [
    "AccuracyOptimalEstimator",
    "CandidateArray",
    "CostEstimate",
    "Decomposition",
    "HPBaseline",
    "HybridGraph",
    "HybridGraphBuilder",
    "InstantiatedVariable",
    "LegacyBaseline",
    "PathCostEstimator",
    "PropagatedJoint",
    "RandomDecompositionEstimator",
    "RelevantVariable",
    "coarsest_decomposition",
    "collapse_to_cost_histogram",
    "decomposition_entropy",
    "propagate_joint",
    "random_decomposition",
    "shift_and_enlarge",
    "updated_departure_interval",
]
