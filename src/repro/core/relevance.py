"""Spatial and temporal relevance of instantiated variables (Section 4.1.3).

Given a query path and a departure time, only some instantiated random
variables can participate in a decomposition:

* a variable is **spatially relevant** when its path is a sub-path of the
  query path;
* a variable is **temporally relevant** when its interval intersects the
  query's *updated departure interval* on the variable's path, obtained by
  progressively applying the shift-and-enlarge (SAE) operation along the
  preceding edges (Equation 3).

Relevant variables are organised into the two-dimensional *candidate
array*: one row per edge of the query path, holding the relevant variables
whose paths start at that edge, ordered by rank.  Every row always contains
at least the unit-path variable for its edge (falling back to the
speed-limit distribution), so a decomposition that covers the query path
always exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import EstimatorParameters
from ..exceptions import EstimationError
from ..roadnet.path import Path
from ..timeutil import interval_of
from .hybrid_graph import HybridGraph
from .variables import InstantiatedVariable


@dataclass(frozen=True)
class RelevantVariable:
    """An instantiated variable aligned with a position of the query path."""

    variable: InstantiatedVariable
    start_index: int

    @property
    def rank(self) -> int:
        return self.variable.rank

    @property
    def path(self) -> Path:
        return self.variable.path

    @property
    def end_index(self) -> int:
        """Index one past the last query-path edge covered by the variable."""
        return self.start_index + self.rank


def shift_and_enlarge(
    interval: tuple[float, float], unit_variable: InstantiatedVariable
) -> tuple[float, float]:
    """The SAE operation: shift a departure interval across one edge.

    ``SAE([ts, te], V_e) = [ts + V_e.min, te + V_e.max]`` where ``V_e.min``
    and ``V_e.max`` are the minimum and maximum travel times recorded in the
    unit-path variable of the edge.
    """
    start, end = interval
    if end < start:
        raise EstimationError(f"invalid departure interval [{start}, {end}]")
    return start + unit_variable.min_cost, end + unit_variable.max_cost


def updated_departure_interval(
    hybrid_graph: HybridGraph,
    query_path: Path,
    departure_time_s: float,
    edge_position: int,
) -> tuple[float, float]:
    """The updated departure interval ``UI_k`` on the query path (Equation 3).

    ``edge_position`` is the zero-based index of the edge within the query
    path; position 0 returns the degenerate interval ``[t, t]``.
    """
    if not 0 <= edge_position < len(query_path):
        raise EstimationError(
            f"edge position {edge_position} out of range for path of length {len(query_path)}"
        )
    alpha = hybrid_graph.parameters.alpha_minutes
    interval = (float(departure_time_s), float(departure_time_s))
    for position in range(edge_position):
        edge_id = query_path.edge_ids[position]
        midpoint = (interval[0] + interval[1]) / 2.0
        unit = hybrid_graph.unit_variable(edge_id, interval_of(midpoint, alpha))
        interval = shift_and_enlarge(interval, unit)
    return interval


class CandidateArray:
    """The two-dimensional array of spatio-temporally relevant variables (Table 1)."""

    def __init__(self, query_path: Path, departure_time_s: float, rows: list[list[RelevantVariable]]):
        if len(rows) != len(query_path):
            raise EstimationError("the candidate array needs one row per query-path edge")
        for index, row in enumerate(rows):
            if not row:
                raise EstimationError(f"candidate array row {index} is empty")
        self.query_path = query_path
        self.departure_time_s = departure_time_s
        self._rows = [sorted(row, key=lambda rv: rv.rank) for row in rows]

    def row(self, position: int) -> list[RelevantVariable]:
        """Relevant variables whose path starts at the given query-path position."""
        return list(self._rows[position])

    def highest_rank(self, position: int) -> RelevantVariable:
        """The highest-rank relevant variable starting at the given position."""
        return self._rows[position][-1]

    def random_choice(self, position: int, rng: np.random.Generator) -> RelevantVariable:
        """A uniformly random relevant variable starting at the given position."""
        row = self._rows[position]
        return row[int(rng.integers(0, len(row)))]

    def __len__(self) -> int:
        return len(self._rows)

    def total_variables(self) -> int:
        return sum(len(row) for row in self._rows)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        ranks = [row[-1].rank for row in self._rows]
        return f"CandidateArray(|P|={len(self._rows)}, max ranks per row={ranks})"


def build_candidate_array(
    hybrid_graph: HybridGraph,
    query_path: Path,
    departure_time_s: float,
    max_rank: int | None = None,
) -> CandidateArray:
    """Identify the spatio-temporally relevant variables for a query (Section 4.1.3).

    ``max_rank`` caps the rank of the variables that are considered, which
    yields the paper's OD-2/OD-3/OD-4 variants; ``None`` imposes no cap
    (plain OD).
    """
    parameters: EstimatorParameters = hybrid_graph.parameters
    alpha = parameters.alpha_minutes
    query_ids = query_path.edge_ids
    n = len(query_ids)

    rows: list[list[RelevantVariable]] = []
    departure_interval = (float(departure_time_s), float(departure_time_s))
    for position in range(n):
        edge_id = query_ids[position]
        remaining = n - position

        # Spatial relevance: variables whose path starts here and matches the
        # query path's continuation.
        spatially_relevant: dict[tuple[int, ...], list[InstantiatedVariable]] = {}
        for variable in hybrid_graph.variables_starting_with(edge_id):
            rank = variable.rank
            if rank > remaining:
                continue
            if max_rank is not None and rank > max_rank:
                continue
            if variable.path.edge_ids != query_ids[position : position + rank]:
                continue
            spatially_relevant.setdefault(variable.path.edge_ids, []).append(variable)

        # Temporal relevance: the variable's interval must intersect the
        # updated departure interval at this position; among multiple
        # intervals for the same path, keep the one with the largest overlap.
        row: list[RelevantVariable] = []
        interval_start, interval_end = departure_interval
        for edge_ids, variables in spatially_relevant.items():
            best: InstantiatedVariable | None = None
            best_overlap = 0.0
            for variable in variables:
                overlap = variable.interval.overlap_s(interval_start, interval_end)
                if interval_end == interval_start:
                    # Degenerate interval (the first edge): containment decides.
                    overlap = 1.0 if variable.interval.contains(interval_start) else 0.0
                if overlap > best_overlap:
                    best_overlap = overlap
                    best = variable
            if best is not None:
                row.append(RelevantVariable(best, position))

        # Guarantee a unit variable for this edge so a covering decomposition
        # always exists (speed-limit fallback when necessary).
        if not any(rv.rank == 1 for rv in row):
            midpoint = (interval_start + interval_end) / 2.0
            unit = hybrid_graph.unit_variable(edge_id, interval_of(midpoint, alpha))
            row.append(RelevantVariable(unit, position))

        rows.append(row)

        # Advance the departure interval across this edge for the next row.
        midpoint = (interval_start + interval_end) / 2.0
        unit_for_shift = hybrid_graph.unit_variable(edge_id, interval_of(midpoint, alpha))
        departure_interval = shift_and_enlarge(departure_interval, unit_for_shift)

    return CandidateArray(query_path, departure_time_s, rows)
