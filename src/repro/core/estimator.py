"""The path cost distribution estimator (the paper's OD method).

Given a query path and a departure time, the estimator

1. identifies the spatio-temporally relevant instantiated variables and the
   coarsest decomposition (the "OI" step of the Figure 17 breakdown),
2. estimates the joint distribution of the query path from the
   decomposition via Equation 2 ("JC"), and
3. collapses the joint estimate into a one-dimensional travel-cost
   histogram ("MC").

The rank-capped variants OD-2 / OD-3 / OD-4 of Figure 16 are obtained by
passing parameters with ``max_rank`` set, and the RD comparison method by
choosing the ``"random"`` decomposition strategy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..config import EstimatorParameters
from ..exceptions import EstimationError
from ..histograms.univariate import Histogram1D
from ..roadnet.path import Path
from .decomposition import Decomposition, coarsest_decomposition, random_decomposition
from .hybrid_graph import HybridGraph
from .joint import PropagatedJoint, propagate_joint
from .relevance import build_candidate_array


@dataclass(frozen=True)
class CostEstimate:
    """The result of estimating one path's cost distribution.

    Attributes
    ----------
    path, departure_time_s:
        The query.
    histogram:
        The estimated travel-cost distribution.
    method:
        Name of the estimation method ("OD", "OD-2", "RD", "LB", "HP",
        "ground-truth", ...).
    decomposition:
        The decomposition used (``None`` for methods that do not build one).
    entropy:
        The entropy ``H_DE`` of the estimated joint distribution; lower is
        better (Theorem 2 / Figure 15).
    timings_s:
        Wall-clock seconds per step: ``oi`` (decomposition identification),
        ``jc`` (joint computation), ``mc`` (marginal computation), ``total``.
    """

    path: Path
    departure_time_s: float
    histogram: Histogram1D
    method: str
    decomposition: Decomposition | None = None
    entropy: float = float("nan")
    timings_s: dict[str, float] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.histogram.mean

    def prob_within(self, budget: float) -> float:
        """Probability of completing the path within ``budget`` cost units."""
        return self.histogram.prob_at_most(budget)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CostEstimate({self.method}, |P|={len(self.path)}, mean={self.mean:.1f}, "
            f"entropy={self.entropy:.2f})"
        )


class PathCostEstimator:
    """Estimates path cost distributions on a hybrid graph (the OD method)."""

    def __init__(
        self,
        hybrid_graph: HybridGraph,
        parameters: EstimatorParameters | None = None,
        decomposition_strategy: str = "coarsest",
        max_aggregate_buckets: int = 32,
        output_buckets: int = 64,
        seed: int = 0,
    ) -> None:
        if decomposition_strategy not in ("coarsest", "random"):
            raise EstimationError(
                f"decomposition_strategy must be 'coarsest' or 'random', got {decomposition_strategy!r}"
            )
        self.hybrid_graph = hybrid_graph
        self.parameters = parameters or hybrid_graph.parameters
        self.decomposition_strategy = decomposition_strategy
        self.max_aggregate_buckets = max_aggregate_buckets
        self.output_buckets = output_buckets
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def method_name(self) -> str:
        if self.decomposition_strategy == "random":
            return "RD"
        if self.parameters.max_rank is None:
            return "OD"
        return f"OD-{self.parameters.max_rank}"

    # ------------------------------------------------------------------ #
    def select_decomposition(self, path: Path, departure_time_s: float) -> Decomposition:
        """Identify the decomposition for a query (the "OI" step)."""
        candidate_array = build_candidate_array(
            self.hybrid_graph, path, departure_time_s, max_rank=self.parameters.max_rank
        )
        if self.decomposition_strategy == "random":
            return random_decomposition(candidate_array, self._rng)
        return coarsest_decomposition(candidate_array)

    def propagate(self, path: Path, departure_time_s: float) -> PropagatedJoint:
        """Run the OI and JC steps only, returning the propagated joint.

        The result can be collapsed into a cost estimate with
        :meth:`estimate_from_joint`; splitting the pipeline this way lets a
        caller (e.g. the online estimation service) cache the propagated
        joint and re-run only the cheap marginalisation step.
        """
        if len(path) < 1:
            raise EstimationError("the query path must contain at least one edge")
        decomposition = self.select_decomposition(path, departure_time_s)
        return propagate_joint(decomposition, max_aggregate_buckets=self.max_aggregate_buckets)

    def estimate_from_joint(
        self,
        propagated: PropagatedJoint,
        path: Path,
        departure_time_s: float,
    ) -> CostEstimate:
        """The MC step: collapse a propagated joint into a :class:`CostEstimate`.

        The collapse runs as one vectorised kernel pass over the propagated
        cost cells and is memoised on the joint, so repeated
        marginalisation of a cached decomposition (e.g. a batch of budget
        queries through the estimation service) costs a dictionary lookup.
        """
        return CostEstimate(
            path=path,
            departure_time_s=departure_time_s,
            histogram=propagated.cost_histogram(self.output_buckets),
            method=self.method_name,
            decomposition=propagated.decomposition,
            entropy=propagated.entropy,
        )

    def estimate(self, path: Path, departure_time_s: float) -> CostEstimate:
        """Estimate the travel cost distribution of ``path`` at ``departure_time_s``."""
        if len(path) < 1:
            raise EstimationError("the query path must contain at least one edge")
        started = time.perf_counter()
        decomposition = self.select_decomposition(path, departure_time_s)
        after_oi = time.perf_counter()
        propagated = propagate_joint(decomposition, max_aggregate_buckets=self.max_aggregate_buckets)
        after_jc = time.perf_counter()
        estimate = self.estimate_from_joint(propagated, path, departure_time_s)
        after_mc = time.perf_counter()
        return replace(
            estimate,
            timings_s={
                "oi": after_oi - started,
                "jc": after_jc - after_oi,
                "mc": after_mc - after_jc,
                "total": after_mc - started,
            },
        )

    def prob_within(self, path: Path, departure_time_s: float, budget: float) -> float:
        """Probability that ``path`` can be traversed within ``budget`` cost units."""
        return self.estimate(path, departure_time_s).prob_within(budget)

    def with_max_rank(self, max_rank: int | None) -> "PathCostEstimator":
        """A copy of this estimator restricted to variables of rank <= ``max_rank``."""
        return PathCostEstimator(
            self.hybrid_graph,
            parameters=self.parameters.with_max_rank(max_rank),
            decomposition_strategy=self.decomposition_strategy,
            max_aggregate_buckets=self.max_aggregate_buckets,
            output_buckets=self.output_buckets,
            seed=self.seed,
        )
