"""Metrics used across the evaluation harness."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.estimator import CostEstimate
from ..core.hybrid_graph import HybridGraph
from ..histograms.divergence import histogram_kl_divergence
from ..trajectories.store import TrajectoryStore


def kl_to_ground_truth(ground_truth: CostEstimate, estimate: CostEstimate) -> float:
    """``KL(D_GT, D_estimate)`` between two cost estimates' histograms."""
    return histogram_kl_divergence(ground_truth.histogram, estimate.histogram)


def mean_entropy(estimates: Sequence[CostEstimate]) -> float:
    """Average entropy ``H_DE`` over a collection of estimates (Figure 15)."""
    values = [estimate.entropy for estimate in estimates if np.isfinite(estimate.entropy)]
    if not values:
        return float("nan")
    return float(np.mean(values))


def coverage_ratio(hybrid_graph: HybridGraph, store: TrajectoryStore) -> float:
    """The paper's coverage: |edges with instantiated variables| / |edges with GPS data|."""
    observed = store.covered_edges()
    if not observed:
        return 0.0
    covered = hybrid_graph.covered_edges()
    return len(covered & observed) / len(observed)


def mean_runtime_s(estimates: Sequence[CostEstimate], key: str = "total") -> float:
    """Average wall-clock time of the given step across estimates."""
    values = [estimate.timings_s.get(key, float("nan")) for estimate in estimates]
    values = [value for value in values if np.isfinite(value)]
    if not values:
        return float("nan")
    return float(np.mean(values))
