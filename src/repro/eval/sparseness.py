"""Figure 3: the data sparseness analysis.

For each path cardinality, the maximum number of trajectories that occurred
on any path of that cardinality is reported (no time constraint).  The
paper's point is that this number drops rapidly with the cardinality, so
the accuracy-optimal baseline is inapplicable for long paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from .datasets import ExperimentDataset


@dataclass(frozen=True)
class SparsenessResult:
    """Maximum trajectory count per path cardinality for one dataset."""

    dataset_name: str
    max_count_by_cardinality: dict[int, int]

    def series(self) -> list[tuple[int, int]]:
        return sorted(self.max_count_by_cardinality.items())

    def is_decreasing_overall(self) -> bool:
        """True when the count at the largest cardinality is below the count at 1."""
        series = self.series()
        return series[-1][1] <= series[0][1]


def fig03_sparseness(dataset: ExperimentDataset, max_cardinality: int = 25) -> SparsenessResult:
    """Reproduce Figure 3 for one dataset."""
    counts = dataset.store.max_trajectories_by_cardinality(max_cardinality)
    return SparsenessResult(dataset.name, counts)
