"""One function per paper figure: the evaluation harness (Section 5).

Every function takes an :class:`~repro.eval.datasets.ExperimentDataset`
(the synthetic substitute for the Aalborg / Beijing GPS datasets) plus a
few workload-size knobs, runs the corresponding experiment, and returns a
small result object whose ``series()`` / ``rows()`` methods produce the
rows the paper's figure plots.  The ``benchmarks/`` directory wraps each
function in a pytest-benchmark target and prints the series.

The default workload sizes are scaled down from the paper's (hundreds of
query paths instead of thousands, a few tens of held-out paths instead of
one hundred) so the whole suite runs on a laptop; the *shapes* of the
results -- which method wins, how errors and run times grow with the path
cardinality -- are what the reproduction checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import EstimatorParameters
from ..core.baselines import HPBaseline, LegacyBaseline, RandomDecompositionEstimator
from ..core.estimator import CostEstimate, PathCostEstimator
from ..exceptions import EstimationError
from ..histograms.autobuckets import (
    auto_bucket_count,
    build_auto_histogram,
    build_static_histogram,
)
from ..histograms.divergence import histogram_kl_divergence, kl_divergence_from_samples
from ..histograms.parametric import fit_distribution
from ..histograms.raw import RawDistribution
from ..histograms.univariate import Histogram1D
from ..histograms.vopt import equal_width_boundaries
from ..roadnet.path import Path
from ..roadnet.routing import ReverseBoundsIndex
from ..routing.dfs_router import DFSStochasticRouter
from .datasets import EvaluationCase, ExperimentDataset
from .metrics import coverage_ratio, kl_to_ground_truth


# ====================================================================== #
# Figure 5 -- automatic bucket-count selection
# ====================================================================== #
@dataclass(frozen=True)
class BucketSelectionResult:
    """Figure 5: the error curve E_b and the automatically chosen bucket count."""

    dataset_name: str
    n_observations: int
    errors_by_bucket_count: list[float]
    chosen_buckets: int
    auto_histogram: Histogram1D
    raw: RawDistribution

    def series(self) -> list[tuple[int, float]]:
        return [(b + 1, error) for b, error in enumerate(self.errors_by_bucket_count)]


def _busiest_unit_sample(dataset: ExperimentDataset) -> RawDistribution:
    """The raw cost distribution of the busiest (edge, interval) pair."""
    store = dataset.store
    parameters = dataset.parameters
    best: list[float] | None = None
    for edge_id in store.covered_edges():
        grouped = store.observations_by_interval(Path([edge_id]), parameters.alpha_minutes)
        for observations in grouped.values():
            costs = [o.total_cost for o in observations]
            if best is None or len(costs) > len(best):
                best = costs
    if best is None:
        raise EstimationError("the dataset has no observations")
    return RawDistribution(best)


def fig05_bucket_selection(dataset: ExperimentDataset) -> BucketSelectionResult:
    """Reproduce Figure 5: E_b vs b and the auto-selected histogram."""
    raw = _busiest_unit_sample(dataset)
    parameters = dataset.parameters
    chosen, errors = auto_bucket_count(raw, parameters, return_errors=True)
    histogram = build_auto_histogram(raw, parameters)
    return BucketSelectionResult(
        dataset_name=dataset.name,
        n_observations=raw.n,
        errors_by_bucket_count=list(errors),
        chosen_buckets=chosen,
        auto_histogram=histogram,
        raw=raw,
    )


# ====================================================================== #
# Figure 8 -- effect of alpha (interval length)
# ====================================================================== #
@dataclass(frozen=True)
class AlphaEffectResult:
    """Figure 8: coverage and per-rank entropy for each alpha."""

    dataset_name: str
    coverage_by_alpha: dict[int, float]
    entropy_by_alpha: dict[int, dict[str, float]]

    def coverage_series(self) -> list[tuple[int, float]]:
        return sorted(self.coverage_by_alpha.items())


def fig08_alpha(
    dataset: ExperimentDataset,
    alphas_minutes: tuple[int, ...] = (15, 30, 60, 120),
    max_cardinality: int = 4,
) -> AlphaEffectResult:
    """Reproduce Figure 8: instantiate the hybrid graph under each alpha."""
    coverage: dict[int, float] = {}
    entropy: dict[int, dict[str, float]] = {}
    for alpha in alphas_minutes:
        graph = dataset.hybrid_graph(alpha_minutes=alpha, max_cardinality=max_cardinality)
        coverage[alpha] = coverage_ratio(graph, dataset.store)
        entropy[alpha] = graph.mean_entropy_by_rank()
    return AlphaEffectResult(dataset.name, coverage, entropy)


# ====================================================================== #
# Figure 9 -- effect of beta (qualified trajectory threshold)
# ====================================================================== #
@dataclass(frozen=True)
class BetaEffectResult:
    """Figure 9: instantiated variable counts per rank for each beta."""

    dataset_name: str
    counts_by_beta: dict[int, dict[str, int]]

    def totals(self) -> dict[int, int]:
        return {beta: sum(counts.values()) for beta, counts in self.counts_by_beta.items()}


def fig09_beta(
    dataset: ExperimentDataset,
    betas: tuple[int, ...] = (15, 30, 45, 60),
    max_cardinality: int = 4,
) -> BetaEffectResult:
    """Reproduce Figure 9: instantiate the hybrid graph under each beta."""
    counts: dict[int, dict[str, int]] = {}
    for beta in betas:
        graph = dataset.hybrid_graph(beta=beta, max_cardinality=max_cardinality)
        counts[beta] = graph.counts_by_rank()
    return BetaEffectResult(dataset.name, counts)


# ====================================================================== #
# Figure 10 -- effect of the trajectory dataset size
# ====================================================================== #
@dataclass(frozen=True)
class DatasetSizeResult:
    """Figure 10: instantiated variable counts per rank for each dataset fraction."""

    dataset_name: str
    counts_by_fraction: dict[float, dict[str, int]]

    def totals(self) -> dict[float, int]:
        return {fraction: sum(counts.values()) for fraction, counts in self.counts_by_fraction.items()}


def fig10_dataset_size(
    dataset: ExperimentDataset,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    max_cardinality: int = 4,
) -> DatasetSizeResult:
    """Reproduce Figure 10: instantiate the hybrid graph on growing trajectory subsets."""
    counts: dict[float, dict[str, int]] = {}
    for fraction in fractions:
        graph = dataset.hybrid_graph(fraction=fraction, max_cardinality=max_cardinality)
        counts[fraction] = graph.counts_by_rank()
    return DatasetSizeResult(dataset.name, counts)


# ====================================================================== #
# Figure 11 -- histogram representation quality and space saving
# ====================================================================== #
@dataclass(frozen=True)
class HistogramComparisonResult:
    """Figure 11: KL divergence and space saving of distribution representations."""

    dataset_name: str
    mean_kl_by_method: dict[str, float]
    mean_space_saving_by_method: dict[str, float]
    n_samples: int


def _unit_samples(dataset: ExperimentDataset, limit: int) -> list[RawDistribution]:
    """Raw cost distributions of (edge, interval) pairs with enough observations."""
    store = dataset.store
    parameters = dataset.parameters
    samples: list[RawDistribution] = []
    for edge_id in sorted(store.covered_edges()):
        grouped = store.observations_by_interval(Path([edge_id]), parameters.alpha_minutes)
        for observations in grouped.values():
            if len(observations) < parameters.beta:
                continue
            samples.append(RawDistribution([o.total_cost for o in observations]))
            if len(samples) >= limit:
                return samples
    return samples


def fig11_histograms(dataset: ExperimentDataset, n_samples: int = 60) -> HistogramComparisonResult:
    """Reproduce Figure 11: Auto vs parametric fits vs static histograms."""
    samples = _unit_samples(dataset, n_samples)
    if not samples:
        raise EstimationError("no sufficiently supported unit samples in the dataset")
    parameters = dataset.parameters
    kl: dict[str, list[float]] = {
        "gaussian": [],
        "gamma": [],
        "exponential": [],
        "auto": [],
        "sta-3": [],
        "sta-4": [],
    }
    saving: dict[str, list[float]] = {"auto": [], "sta-3": [], "sta-4": []}
    for raw in samples:
        raw_storage = raw.storage_size()
        for family in ("gaussian", "gamma", "exponential"):
            fitted = fit_distribution(raw, family)
            kl[family].append(kl_divergence_from_samples(raw, fitted))
        auto = build_auto_histogram(raw, parameters)
        kl["auto"].append(kl_divergence_from_samples(raw, auto))
        saving["auto"].append(1.0 - auto.storage_size() / raw_storage)
        for b in (3, 4):
            static = build_static_histogram(raw, b)
            kl[f"sta-{b}"].append(kl_divergence_from_samples(raw, static))
            saving[f"sta-{b}"].append(1.0 - static.storage_size() / raw_storage)
    return HistogramComparisonResult(
        dataset_name=dataset.name,
        mean_kl_by_method={name: float(np.mean(values)) for name, values in kl.items()},
        mean_space_saving_by_method={name: float(np.mean(values)) for name, values in saving.items()},
        n_samples=len(samples),
    )


# ====================================================================== #
# Figure 12 -- memory usage of the instantiated variables
# ====================================================================== #
@dataclass(frozen=True)
class MemoryUsageResult:
    """Figure 12: memory footprint of W_P as the dataset grows."""

    dataset_name: str
    bytes_by_fraction: dict[float, int]

    def megabytes_by_fraction(self) -> dict[float, float]:
        return {fraction: size / 1e6 for fraction, size in self.bytes_by_fraction.items()}


def fig12_memory(
    dataset: ExperimentDataset,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    max_cardinality: int = 4,
) -> MemoryUsageResult:
    """Reproduce Figure 12: memory used by the instantiated random variables."""
    usage: dict[float, int] = {}
    for fraction in fractions:
        graph = dataset.hybrid_graph(fraction=fraction, max_cardinality=max_cardinality)
        usage[fraction] = graph.memory_usage_bytes()
    return MemoryUsageResult(dataset.name, usage)


# ====================================================================== #
# Shared helpers for the estimation-quality experiments
# ====================================================================== #
def _method_estimators(graph, parameters: EstimatorParameters, seed: int = 0) -> dict[str, object]:
    """The four methods compared throughout Section 5.2.2."""
    return {
        "OD": PathCostEstimator(graph, parameters),
        "LB": LegacyBaseline(graph, parameters),
        "HP": HPBaseline(graph, parameters),
        "RD": RandomDecompositionEstimator(graph, parameters, seed=seed),
    }


# ====================================================================== #
# Figure 13 -- accuracy on one particular path
# ====================================================================== #
@dataclass(frozen=True)
class SinglePathResult:
    """Figure 13: the estimated distributions of one held-out path per method."""

    dataset_name: str
    path: Path
    departure_time_s: float
    ground_truth: Histogram1D
    estimates: dict[str, Histogram1D]
    kl_by_method: dict[str, float]


def fig13_single_path(
    dataset: ExperimentDataset,
    cardinality: int = 6,
    seed: int = 0,
) -> SinglePathResult:
    """Reproduce Figure 13: compare OD/LB/HP/RD on a single held-out path."""
    cases = dataset.evaluation_cases(cardinality, n_cases=1, seed=seed)
    if not cases:
        raise EstimationError(
            f"no path of cardinality {cardinality} has enough support for a ground truth"
        )
    case = cases[0]
    training = dataset.training_store([case])
    graph = dataset.hybrid_graph(store=training)
    estimators = _method_estimators(graph, dataset.parameters, seed=seed)
    estimates: dict[str, Histogram1D] = {}
    kl: dict[str, float] = {}
    for name, estimator in estimators.items():
        estimate = estimator.estimate(case.path, case.departure_time_s)
        estimates[name] = estimate.histogram
        kl[name] = histogram_kl_divergence(case.ground_truth.histogram, estimate.histogram)
    return SinglePathResult(
        dataset_name=dataset.name,
        path=case.path,
        departure_time_s=case.departure_time_s,
        ground_truth=case.ground_truth.histogram,
        estimates=estimates,
        kl_by_method=kl,
    )


# ====================================================================== #
# Figure 14 -- accuracy against ground truth, varying |P_query|
# ====================================================================== #
@dataclass(frozen=True)
class AccuracyResult:
    """Figure 14: mean KL divergence to ground truth per method and cardinality."""

    dataset_name: str
    mean_kl: dict[int, dict[str, float]]
    n_cases_by_cardinality: dict[int, int]

    def series(self, method: str) -> list[tuple[int, float]]:
        return sorted(
            (cardinality, values[method])
            for cardinality, values in self.mean_kl.items()
            if method in values
        )


def fig14_accuracy(
    dataset: ExperimentDataset,
    cardinalities: tuple[int, ...] = (5, 10, 15, 20),
    n_paths: int = 15,
    seed: int = 0,
) -> AccuracyResult:
    """Reproduce Figure 14: held-out accuracy of OD/LB/RD/HP.

    For each query cardinality a set of *edge-disjoint* evaluation paths is
    selected, their ground-truth trajectories are held out, and one training
    hybrid graph is built per cardinality.  Keeping the evaluation paths
    disjoint prevents one path's hold-out from also draining the sub-path
    coverage another path relies on, which would artificially push every
    method onto the speed-limit fallback.
    """
    mean_kl: dict[int, dict[str, float]] = {}
    counts: dict[int, int] = {}
    found_any = False
    for cardinality in cardinalities:
        cases = dataset.evaluation_cases(cardinality, n_cases=n_paths, seed=seed + cardinality)
        if not cases:
            continue
        found_any = True
        training = dataset.training_store(cases)
        graph = dataset.hybrid_graph(store=training)
        estimators = _method_estimators(graph, dataset.parameters, seed=seed)
        per_method: dict[str, list[float]] = {name: [] for name in estimators}
        for case in cases:
            for name, estimator in estimators.items():
                estimate = estimator.estimate(case.path, case.departure_time_s)
                per_method[name].append(kl_to_ground_truth(case.ground_truth, estimate))
        mean_kl[cardinality] = {
            name: float(np.mean(values)) for name, values in per_method.items() if values
        }
        counts[cardinality] = len(cases)
    if not found_any:
        raise EstimationError("no evaluation cases with ground truth could be selected")
    return AccuracyResult(dataset.name, mean_kl, counts)


# ====================================================================== #
# Figure 15 -- entropy comparison on long paths without ground truth
# ====================================================================== #
@dataclass(frozen=True)
class EntropyResult:
    """Figure 15: mean estimate entropy H_DE per method and cardinality."""

    dataset_name: str
    mean_entropy: dict[int, dict[str, float]]

    def series(self, method: str) -> list[tuple[int, float]]:
        return sorted(
            (cardinality, values[method])
            for cardinality, values in self.mean_entropy.items()
            if method in values
        )


def fig15_entropy(
    dataset: ExperimentDataset,
    cardinalities: tuple[int, ...] = (20, 40, 60, 80, 100),
    n_paths: int = 10,
    seed: int = 0,
) -> EntropyResult:
    """Reproduce Figure 15: entropy of the estimated joints on long query paths."""
    graph = dataset.hybrid_graph()
    estimators = _method_estimators(graph, dataset.parameters, seed=seed)
    result: dict[int, dict[str, float]] = {}
    for cardinality in cardinalities:
        workload = dataset.query_workload(cardinality, n_paths, seed=seed + cardinality)
        if not workload:
            continue
        per_method: dict[str, list[float]] = {name: [] for name in estimators}
        for path, departure in workload:
            for name, estimator in estimators.items():
                estimate = estimator.estimate(path, departure)
                if np.isfinite(estimate.entropy):
                    per_method[name].append(estimate.entropy)
        result[cardinality] = {
            name: float(np.mean(values)) for name, values in per_method.items() if values
        }
    return EntropyResult(dataset.name, result)


# ====================================================================== #
# Figure 16 -- efficiency of cost distribution computation
# ====================================================================== #
@dataclass(frozen=True)
class EfficiencyResult:
    """Figure 16: mean estimation run time per method and query cardinality."""

    dataset_name: str
    mean_runtime_s: dict[int, dict[str, float]]

    def series(self, method: str) -> list[tuple[int, float]]:
        return sorted(
            (cardinality, values[method])
            for cardinality, values in self.mean_runtime_s.items()
            if method in values
        )


def fig16_efficiency(
    dataset: ExperimentDataset,
    cardinalities: tuple[int, ...] = (20, 40, 60, 80, 100),
    n_paths: int = 8,
    rank_caps: tuple[int, ...] = (2, 3, 4),
    seed: int = 0,
) -> EfficiencyResult:
    """Reproduce Figure 16: run time of OD, RD, HP, LB and the OD-x variants."""
    graph = dataset.hybrid_graph()
    parameters = dataset.parameters
    estimators: dict[str, object] = _method_estimators(graph, parameters, seed=seed)
    for cap in rank_caps:
        estimators[f"OD-{cap}"] = PathCostEstimator(graph, parameters.with_max_rank(cap))

    result: dict[int, dict[str, float]] = {}
    for cardinality in cardinalities:
        workload = dataset.query_workload(cardinality, n_paths, seed=seed + cardinality)
        if not workload:
            continue
        per_method: dict[str, list[float]] = {name: [] for name in estimators}
        for path, departure in workload:
            for name, estimator in estimators.items():
                started = time.perf_counter()
                estimator.estimate(path, departure)
                per_method[name].append(time.perf_counter() - started)
        result[cardinality] = {
            name: float(np.mean(values)) for name, values in per_method.items() if values
        }
    return EfficiencyResult(dataset.name, result)


# ====================================================================== #
# Figure 17 -- run-time breakdown of the OD steps
# ====================================================================== #
@dataclass(frozen=True)
class BreakdownResult:
    """Figure 17: mean time of the OI / JC / MC steps for each dataset fraction."""

    dataset_name: str
    mean_step_seconds: dict[float, dict[str, float]]


def fig17_breakdown(
    dataset: ExperimentDataset,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    cardinality: int = 20,
    n_paths: int = 10,
    seed: int = 0,
) -> BreakdownResult:
    """Reproduce Figure 17: how OD's run time splits across its three steps."""
    workload = dataset.query_workload(cardinality, n_paths, seed=seed)
    result: dict[float, dict[str, float]] = {}
    for fraction in fractions:
        graph = dataset.hybrid_graph(fraction=fraction)
        estimator = PathCostEstimator(graph, dataset.parameters)
        steps: dict[str, list[float]] = {"oi": [], "jc": [], "mc": []}
        for path, departure in workload:
            estimate = estimator.estimate(path, departure)
            for step in steps:
                steps[step].append(estimate.timings_s.get(step, 0.0))
        result[fraction] = {step: float(np.mean(values)) for step, values in steps.items()}
    return BreakdownResult(dataset.name, result)


# ====================================================================== #
# Figure 18 -- stochastic routing run time
# ====================================================================== #
@dataclass(frozen=True)
class RoutingTimeResult:
    """Figure 18: mean stochastic-routing time per estimator and budget.

    ``truncated_rate`` is the fraction of searches that gave up on the
    expansion budget (``RouteResult.truncated``) rather than exhausting
    the candidate space -- the flag that distinguishes "no path meets the
    budget" from "the search was cut short".
    """

    dataset_name: str
    mean_seconds: dict[float, dict[str, float]]
    success_rate: dict[float, dict[str, float]]
    truncated_rate: dict[float, dict[str, float]] = field(default_factory=dict)


def fig18_routing(
    dataset: ExperimentDataset,
    budgets_s: tuple[float, ...] = (600.0, 1200.0, 1800.0),
    n_pairs: int = 8,
    max_path_edges: int = 25,
    max_expansions: int = 1500,
    seed: int = 0,
) -> RoutingTimeResult:
    """Reproduce Figure 18: LB-DFS vs HP-DFS vs OD-DFS routing time."""
    graph = dataset.hybrid_graph()
    parameters = dataset.parameters
    estimators = {
        "LB-DFS": LegacyBaseline(graph, parameters),
        "HP-DFS": HPBaseline(graph, parameters),
        "OD-DFS": PathCostEstimator(graph, parameters),
    }
    rng = np.random.default_rng(seed)
    vertices = [vertex.vertex_id for vertex in dataset.network.vertices()]
    pairs: list[tuple[int, int]] = []
    attempts = 0
    while len(pairs) < n_pairs and attempts < n_pairs * 20:
        attempts += 1
        source, target = (int(v) for v in rng.choice(vertices, size=2, replace=False))
        pairs.append((source, target))
    departure = 8.0 * 3600.0

    # Free-flow bounds are estimator-independent: share one index across
    # every (pair, estimator, budget) router so each target pays a single
    # reverse-Dijkstra sweep -- prewarmed so no estimator's timings absorb
    # the sweeps.
    bounds_index = ReverseBoundsIndex(dataset.network)
    for _, target in pairs:
        bounds_index.bounds_to(target)
    times: dict[float, dict[str, float]] = {}
    success: dict[float, dict[str, float]] = {}
    truncated: dict[float, dict[str, float]] = {}
    for budget in budgets_s:
        per_method_time: dict[str, list[float]] = {name: [] for name in estimators}
        per_method_found: dict[str, list[float]] = {name: [] for name in estimators}
        per_method_truncated: dict[str, list[float]] = {name: [] for name in estimators}
        for source, target in pairs:
            for name, estimator in estimators.items():
                router = DFSStochasticRouter(
                    dataset.network,
                    estimator,
                    max_path_edges=max_path_edges,
                    max_expansions=max_expansions,
                    bounds_index=bounds_index,
                )
                outcome = router.find_route(source, target, departure, budget)
                per_method_time[name].append(outcome.elapsed_s)
                per_method_found[name].append(1.0 if outcome.found else 0.0)
                per_method_truncated[name].append(1.0 if outcome.truncated else 0.0)
        times[budget] = {name: float(np.mean(values)) for name, values in per_method_time.items()}
        success[budget] = {name: float(np.mean(values)) for name, values in per_method_found.items()}
        truncated[budget] = {
            name: float(np.mean(values)) for name, values in per_method_truncated.items()
        }
    return RoutingTimeResult(dataset.name, times, success, truncated)


# ====================================================================== #
# Ablation: bucket boundary / count strategies (DESIGN.md Section 6)
# ====================================================================== #
@dataclass(frozen=True)
class BucketStrategyAblation:
    """KL divergence of alternative bucketing strategies against the raw data."""

    dataset_name: str
    mean_kl_by_strategy: dict[str, float]
    n_samples: int


def ablation_bucket_strategies(
    dataset: ExperimentDataset,
    n_samples: int = 40,
    thresholds: tuple[float, ...] = (0.05, 0.1, 0.25),
) -> BucketStrategyAblation:
    """Compare V-Optimal vs equal-width boundaries and auto-selection thresholds."""
    samples = _unit_samples(dataset, n_samples)
    if not samples:
        raise EstimationError("no sufficiently supported unit samples in the dataset")
    results: dict[str, list[float]] = {"vopt-4": [], "equal-width-4": []}
    for threshold in thresholds:
        results[f"auto-{threshold}"] = []
    for raw in samples:
        results["vopt-4"].append(
            kl_divergence_from_samples(raw, build_static_histogram(raw, 4))
        )
        equal = Histogram1D.from_raw(raw, equal_width_boundaries(raw, 4))
        results["equal-width-4"].append(kl_divergence_from_samples(raw, equal))
        for threshold in thresholds:
            parameters = EstimatorParameters(
                alpha_minutes=dataset.parameters.alpha_minutes,
                beta=dataset.parameters.beta,
                bucket_error_drop_threshold=threshold,
            )
            auto = build_auto_histogram(raw, parameters)
            results[f"auto-{threshold}"].append(kl_divergence_from_samples(raw, auto))
    return BucketStrategyAblation(
        dataset_name=dataset.name,
        mean_kl_by_strategy={name: float(np.mean(values)) for name, values in results.items()},
        n_samples=len(samples),
    )
