"""Figure 4: examining the independence assumption of the legacy model.

Two analyses from Section 2.3:

* **Figure 4(a)** -- for two-edge paths with plenty of trajectories in one
  interval, the KL divergence between the ground-truth distribution
  ``D_GT`` and the legacy convolution ``D_LB`` is computed; if adjacent
  edges were independent the divergence would be (near) zero.  The result
  is reported as the percentage of paths falling into divergence bands.
* **Figure 4(b)** -- the average divergence for paths of growing
  cardinality, showing the error of the independence assumption grows with
  the path length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.baselines import AccuracyOptimalEstimator, LegacyBaseline
from ..exceptions import EstimationError
from ..histograms.divergence import histogram_kl_divergence
from .datasets import ExperimentDataset

#: Divergence bands reported by Figure 4(a).
KL_BANDS = ((0.0, 0.5), (0.5, 1.0), (1.0, 1.5), (1.5, float("inf")))


@dataclass(frozen=True)
class IndependenceResult:
    """KL divergences between ground truth and the legacy convolution."""

    dataset_name: str
    pairwise_divergences: list[float]
    mean_divergence_by_cardinality: dict[int, float]

    def band_percentages(self) -> dict[str, float]:
        """Share of two-edge paths per divergence band (Figure 4(a))."""
        if not self.pairwise_divergences:
            return {}
        values = np.asarray(self.pairwise_divergences)
        result: dict[str, float] = {}
        for low, high in KL_BANDS:
            label = f"[{low},{high})" if np.isfinite(high) else f">{low}"
            share = float(np.mean((values >= low) & (values < high)))
            result[label] = share
        return result

    def dependence_share(self, threshold: float = 0.5) -> float:
        """Share of adjacent-edge pairs whose divergence exceeds ``threshold``."""
        if not self.pairwise_divergences:
            return 0.0
        return float(np.mean(np.asarray(self.pairwise_divergences) >= threshold))


def fig04_independence(
    dataset: ExperimentDataset,
    n_pairs: int = 200,
    cardinalities: tuple[int, ...] = (2, 3, 4, 5, 6),
    min_support: int | None = None,
    seed: int = 0,
) -> IndependenceResult:
    """Reproduce Figure 4 for one dataset."""
    parameters = dataset.parameters
    min_support = min_support or parameters.beta
    ground_truth = AccuracyOptimalEstimator(dataset.store, parameters)
    # Only unit-path variables are needed for the legacy baseline.
    graph = dataset.hybrid_graph(max_cardinality=1, cache_key_extra="lb-only")
    legacy = LegacyBaseline(graph, parameters)
    rng = np.random.default_rng(seed)

    def divergences_for(cardinality: int, limit: int) -> list[float]:
        paths = dataset.store.paths_with_min_support(cardinality, min_support)
        rng.shuffle(paths)
        divergences: list[float] = []
        for path in paths[: limit * 3]:
            grouped = dataset.store.observations_by_interval(path, parameters.alpha_minutes)
            eligible = [obs for obs in grouped.values() if len(obs) >= min_support]
            if not eligible:
                continue
            observations = max(eligible, key=len)
            departure = float(np.median([o.departure_time_s for o in observations]))
            try:
                truth = ground_truth.estimate(path, departure)
            except EstimationError:
                continue
            estimate = legacy.estimate(path, departure)
            divergences.append(histogram_kl_divergence(truth.histogram, estimate.histogram))
            if len(divergences) >= limit:
                break
        return divergences

    pairwise = divergences_for(2, n_pairs)
    by_cardinality: dict[int, float] = {}
    for cardinality in cardinalities:
        values = divergences_for(cardinality, max(10, n_pairs // 5))
        if values:
            by_cardinality[cardinality] = float(np.mean(values))
    return IndependenceResult(dataset.name, pairwise, by_cardinality)
