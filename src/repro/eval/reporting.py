"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures plot;
these helpers format them as aligned text tables so the output of
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction report.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    title: str,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = [str(column) for column in columns]
    body = [[fmt(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def render_series(
    title: str,
    series: Mapping[str, Sequence[tuple[object, float]]],
    x_label: str = "x",
    float_format: str = "{:.4g}",
) -> str:
    """Render one or more (x, y) series as a table with one column per series."""
    xs: list[object] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    rows = []
    for x in xs:
        row: dict[str, object] = {x_label: x}
        for name, points in series.items():
            lookup = {px: py for px, py in points}
            if x in lookup:
                row[name] = lookup[x]
        rows.append(row)
    return render_table(title, rows, [x_label, *series.keys()], float_format)
