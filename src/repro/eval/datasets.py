"""Experiment datasets: a network, simulated trajectories, and cached hybrid graphs.

The paper's experiments run over two city datasets (Aalborg and Beijing).
An :class:`ExperimentDataset` bundles the synthetic substitute: a road
network, the traffic simulator that generated its trajectories, the
trajectory store, and caches for the hybrid graphs built under different
parameter settings so that the per-figure experiment functions do not
repeat expensive instantiation work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import EstimatorParameters, SimulationParameters
from ..core.baselines import AccuracyOptimalEstimator
from ..core.estimator import CostEstimate
from ..core.hybrid_graph import HybridGraph
from ..core.instantiation import HybridGraphBuilder
from ..exceptions import EstimationError
from ..roadnet.generators import aalborg_like, beijing_like
from ..roadnet.graph import RoadNetwork
from ..roadnet.path import Path

from ..trajectories.simulator import TrafficSimulator
from ..trajectories.store import TrajectoryStore


@dataclass
class EvaluationCase:
    """One held-out query: a path, a departure time, and its ground-truth distribution."""

    path: Path
    departure_time_s: float
    ground_truth: CostEstimate
    held_out_trajectory_ids: set[int]


@dataclass
class ExperimentDataset:
    """A named experiment dataset with hybrid-graph caching."""

    name: str
    network: RoadNetwork
    simulator: TrafficSimulator
    store: TrajectoryStore
    parameters: EstimatorParameters = field(default_factory=EstimatorParameters)
    max_cardinality: int = 6
    _graph_cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    def hybrid_graph(
        self,
        alpha_minutes: int | None = None,
        beta: int | None = None,
        fraction: float = 1.0,
        max_cardinality: int | None = None,
        store: TrajectoryStore | None = None,
        cache_key_extra: str | None = None,
    ) -> HybridGraph:
        """Build (or reuse) a hybrid graph under the given parameter overrides."""
        parameters = EstimatorParameters(
            alpha_minutes=alpha_minutes or self.parameters.alpha_minutes,
            beta=beta or self.parameters.beta,
            qualification_window_minutes=self.parameters.qualification_window_minutes,
            max_rank=None,
            cv_folds=self.parameters.cv_folds,
            bucket_error_drop_threshold=self.parameters.bucket_error_drop_threshold,
            max_buckets=self.parameters.max_buckets,
        )
        cardinality = max_cardinality or self.max_cardinality
        key = (
            parameters.alpha_minutes,
            parameters.beta,
            round(fraction, 4),
            cardinality,
            cache_key_extra,
        )
        if key in self._graph_cache and store is None:
            return self._graph_cache[key]
        base_store = store if store is not None else self.store
        if fraction < 1.0:
            base_store = base_store.subset(fraction, seed=17)
        builder = HybridGraphBuilder(self.network, parameters, max_cardinality=cardinality)
        graph = builder.build(base_store)
        if store is None:
            self._graph_cache[key] = graph
        return graph

    # ------------------------------------------------------------------ #
    def evaluation_cases(
        self,
        cardinality: int,
        n_cases: int,
        min_support: int | None = None,
        seed: int = 0,
        edge_disjoint: bool = True,
    ) -> list[EvaluationCase]:
        """Held-out query paths with ground-truth distributions (Figures 13 and 14).

        Paths of the requested cardinality with at least ``min_support``
        qualified trajectories in one interval are selected; the ground
        truth is the accuracy-optimal distribution over those trajectories.

        Hold-out protocol: the paper removes *all* trajectories of the
        selected paths.  With its city-scale datasets, sub-paths remain
        well covered by the vast number of unrelated trips; with our
        smaller synthetic trip population the same rule would also wipe out
        most sub-path and edge coverage, collapsing every estimator onto
        the speed-limit fallback.  We therefore remove just enough
        trajectories to push the full query path below the ``beta``
        threshold (so its own weight can never be instantiated and the
        estimators must work from sub-paths), which preserves the question
        the experiment asks while keeping coverage realistic.  See
        DESIGN.md / EXPERIMENTS.md.
        """
        parameters = self.parameters
        min_support = min_support or parameters.beta
        rng = np.random.default_rng(seed)
        ground_truth = AccuracyOptimalEstimator(self.store, parameters)

        candidates = self.store.paths_with_min_support(cardinality, min_support)
        rng.shuffle(candidates)
        cases: list[EvaluationCase] = []
        used_edges: set[int] = set()
        for path in candidates:
            if edge_disjoint and used_edges & set(path.edge_ids):
                # Overlapping evaluation paths would hold out each other's
                # corridor trajectories, so keep the selected paths disjoint.
                continue
            grouped = self.store.observations_by_interval(path, parameters.alpha_minutes)
            best_interval_index = None
            best_count = 0
            for interval_index, observations in grouped.items():
                if len(observations) > best_count:
                    best_count = len(observations)
                    best_interval_index = interval_index
            if best_interval_index is None or best_count < min_support:
                continue
            observations = grouped[best_interval_index]
            departure = float(np.median([o.departure_time_s for o in observations]))
            try:
                truth = ground_truth.estimate(path, departure)
            except EstimationError:
                continue
            # Remove enough trajectories that the path itself stays below beta,
            # both per alpha-interval (so its weight cannot be instantiated)
            # and within the qualification window (so the accuracy-optimal
            # baseline stays inapplicable on the training store).
            window_qualified = self.store.qualified_observations(
                path, departure, parameters.qualification_window_minutes
            )
            all_ids = sorted(
                {o.trajectory_id for o in observations}
                | {o.trajectory_id for o in window_qualified}
            )
            keep = max(0, parameters.beta - 1)
            n_to_remove = max(1, len(all_ids) - keep)
            removed = set(
                rng.choice(all_ids, size=min(n_to_remove, len(all_ids)), replace=False).tolist()
            )
            cases.append(EvaluationCase(path, departure, truth, removed))
            used_edges.update(path.edge_ids)
            if len(cases) >= n_cases:
                break
        return cases

    def training_store(self, cases: list[EvaluationCase]) -> TrajectoryStore:
        """The store with every held-out trajectory of the given cases removed."""
        excluded: set[int] = set()
        for case in cases:
            excluded.update(case.held_out_trajectory_ids)
        if not excluded:
            return self.store
        return self.store.without_trajectories(excluded)

    # ------------------------------------------------------------------ #
    def random_query_paths(
        self, cardinality: int, n_paths: int, seed: int = 0
    ) -> list[Path]:
        """Random query paths of a given cardinality (for the no-ground-truth experiments)."""
        from ..roadnet.routing import random_path

        rng = np.random.default_rng(seed)
        paths: list[Path] = []
        attempts = 0
        while len(paths) < n_paths and attempts < n_paths * 30:
            attempts += 1
            path = random_path(self.network, cardinality, rng)
            if path is not None:
                paths.append(path)
        return paths

    def query_workload(
        self,
        cardinality: int,
        n_queries: int,
        seed: int = 0,
        corridor_bias: float = 0.7,
    ) -> list[tuple[Path, float]]:
        """Query paths with departure times for the long-path experiments.

        With probability ``corridor_bias`` a query follows one of the
        simulator's popular corridors (extended by a random walk to reach
        the requested cardinality) and departs around that corridor's busy
        hour -- mirroring the fact that real long trips largely run along
        well-travelled roads.  The remaining queries are uniform random
        walks with uniform daytime departures.
        """
        from ..roadnet.routing import random_path

        rng = np.random.default_rng(seed)
        queries: list[tuple[Path, float]] = []
        attempts = 0
        routes = self.simulator.popular_routes
        while len(queries) < n_queries and attempts < n_queries * 40:
            attempts += 1
            if routes and rng.random() < corridor_bias:
                route = routes[int(rng.integers(0, len(routes)))]
                base = route.path
                if len(base) >= cardinality:
                    path = Path(base.edge_ids[:cardinality])
                else:
                    extension = random_path(
                        self.network,
                        cardinality - len(base) + 1,
                        rng,
                        start_edge_id=base.edge_ids[-1],
                    )
                    if extension is None:
                        continue
                    merged_ids = base.edge_ids + extension.edge_ids[1:]
                    if len(set(merged_ids)) != len(merged_ids):
                        continue
                    path = Path(merged_ids)
                departure = (route.busy_hour % 24.0) * 3600.0 + float(rng.normal(0.0, 300.0))
            else:
                path = random_path(self.network, cardinality, rng)
                if path is None:
                    continue
                departure = float(rng.uniform(6.0, 22.0)) * 3600.0
            if len(path) == cardinality:
                queries.append((path, departure % 86400.0))
        return queries

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ExperimentDataset({self.name!r}, |V|={self.network.num_vertices}, "
            f"|E|={self.network.num_edges}, trajectories={len(self.store)})"
        )


_DATASET_CACHE: dict[tuple, ExperimentDataset] = {}


def build_dataset(
    name: str = "aalborg",
    n_trajectories: int = 3000,
    scale: float = 1.0,
    seed: int = 7,
    parameters: EstimatorParameters | None = None,
    max_cardinality: int = 6,
    use_cache: bool = True,
) -> ExperimentDataset:
    """Build (or fetch from the process-wide cache) a named experiment dataset.

    ``"aalborg"`` is a dense mixed-road-category grid city; ``"beijing"`` is
    a highways-and-arterials ring-radial city.  Both are synthetic
    substitutes for the paper's proprietary GPS datasets (see DESIGN.md).
    """
    key = (name, n_trajectories, scale, seed, max_cardinality)
    if use_cache and key in _DATASET_CACHE:
        return _DATASET_CACHE[key]

    if name == "aalborg":
        network = aalborg_like(scale=scale, seed=seed)
        popular_routes = 20
    elif name == "beijing":
        network = beijing_like(scale=scale, seed=seed)
        popular_routes = 14
    else:
        raise ValueError(f"unknown dataset {name!r}; expected 'aalborg' or 'beijing'")

    sim_parameters = SimulationParameters(
        n_trajectories=n_trajectories,
        popular_route_count=popular_routes,
        max_trip_edges=40,
        seed=seed,
    )
    simulator = TrafficSimulator(network, sim_parameters)
    store = TrajectoryStore(simulator.generate())
    dataset = ExperimentDataset(
        name=name,
        network=network,
        simulator=simulator,
        store=store,
        parameters=parameters or EstimatorParameters(),
        max_cardinality=max_cardinality,
    )
    if use_cache:
        _DATASET_CACHE[key] = dataset
    return dataset
