"""Evaluation harness: datasets, metrics, and one function per paper figure."""

from .datasets import ExperimentDataset, build_dataset
from .metrics import coverage_ratio, kl_to_ground_truth, mean_entropy
from .sparseness import fig03_sparseness
from .independence import fig04_independence
from .experiments import (
    ablation_bucket_strategies,
    fig05_bucket_selection,
    fig08_alpha,
    fig09_beta,
    fig10_dataset_size,
    fig11_histograms,
    fig12_memory,
    fig13_single_path,
    fig14_accuracy,
    fig15_entropy,
    fig16_efficiency,
    fig17_breakdown,
    fig18_routing,
)
from .reporting import render_series, render_table

__all__ = [
    "ExperimentDataset",
    "ablation_bucket_strategies",
    "build_dataset",
    "coverage_ratio",
    "fig03_sparseness",
    "fig04_independence",
    "fig05_bucket_selection",
    "fig08_alpha",
    "fig09_beta",
    "fig10_dataset_size",
    "fig11_histograms",
    "fig12_memory",
    "fig13_single_path",
    "fig14_accuracy",
    "fig15_entropy",
    "fig16_efficiency",
    "fig17_breakdown",
    "fig18_routing",
    "kl_to_ground_truth",
    "mean_entropy",
    "render_series",
    "render_table",
]
