"""Open-loop load generation and tail-latency measurement.

Closed-loop benchmarks (issue a query, wait, repeat) can only report
throughput: the next request politely waits for the previous answer, so
queueing never happens and tail latency is invisible.  Real traffic is
*open-loop* -- arrivals happen on the world's schedule, not the server's.
This module generates such schedules (:class:`PoissonArrivals` for
memoryless traffic, :class:`BurstArrivals` for synchronized spikes),
drives a :class:`~repro.frontend.ServingFrontend` at a configured offered
rate with per-request timestamps, and summarises the outcome as a
:class:`LoadReport`: p50/p95/p99/p999 latency, achieved vs. offered
throughput, shed/timeout counts, batch-size distribution, and a
queue-depth time series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import FrontendError
from ..routing.engine import RouteRequest
from ..service.requests import EstimateRequest
from .requests import (
    STATUS_DROPPED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    Ticket,
)
from .stats import DEFAULT_PERCENTILE_POINTS, DepthSampler, percentiles

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .frontend import ServingFrontend

#: Gaps shorter than this are not slept away: ``time.sleep`` granularity is
#: of this order, and an open-loop generator that is behind schedule must
#: catch up by submitting immediately, not by oversleeping.
_MIN_SLEEP_S = 5e-4


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at ``rate_qps``: i.i.d. exponential gaps."""

    rate_qps: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.rate_qps > 0:
            raise FrontendError(f"rate_qps must be positive, got {self.rate_qps}")

    def offsets(self, duration_s: float) -> np.ndarray:
        """Sorted arrival offsets (seconds) within ``[0, duration_s)``."""
        if not duration_s > 0:
            raise FrontendError(f"duration_s must be positive, got {duration_s}")
        rng = np.random.default_rng(self.seed)
        expected = self.rate_qps * duration_s
        # Draw enough gaps that running short is a 5-sigma event, then clip.
        n_draw = int(expected + 5.0 * np.sqrt(expected) + 16)
        gaps = rng.exponential(1.0 / self.rate_qps, size=n_draw)
        arrivals = np.cumsum(gaps)
        arrivals = arrivals[arrivals < duration_s]
        while arrivals.size == 0 or arrivals[-1] < duration_s - 3.0 / self.rate_qps:
            extra = np.cumsum(rng.exponential(1.0 / self.rate_qps, size=n_draw))
            arrivals = np.concatenate(
                [arrivals, (arrivals[-1] if arrivals.size else 0.0) + extra]
            )
            arrivals = arrivals[arrivals < duration_s]
            if arrivals.size >= expected:  # pragma: no cover - safety valve
                break
        return arrivals


@dataclass(frozen=True)
class BurstArrivals:
    """Synchronized spikes: ``burst_size`` simultaneous arrivals per burst.

    The average offered rate is still ``rate_qps``; the traffic simply
    arrives ``burst_size`` at a time, every ``burst_size / rate_qps``
    seconds -- the worst case for queueing and the best case for
    coalescing.
    """

    rate_qps: float
    burst_size: int = 32

    def __post_init__(self) -> None:
        if not self.rate_qps > 0:
            raise FrontendError(f"rate_qps must be positive, got {self.rate_qps}")
        if self.burst_size < 1:
            raise FrontendError(f"burst_size must be >= 1, got {self.burst_size}")

    def offsets(self, duration_s: float) -> np.ndarray:
        if not duration_s > 0:
            raise FrontendError(f"duration_s must be positive, got {duration_s}")
        period_s = self.burst_size / self.rate_qps
        n_bursts = max(int(duration_s / period_s), 1)
        burst_times = np.arange(n_bursts) * period_s
        return np.repeat(burst_times, self.burst_size)


@dataclass(frozen=True)
class LoadReport:
    """What an open-loop run measured (the latency harness's output).

    Latency percentiles cover ``"ok"`` responses only; shed responses are
    counted, not averaged in -- a rejection in microseconds must not make
    the tail look fast.
    """

    offered_qps: float
    duration_s: float
    elapsed_s: float
    n_submitted: int
    n_ok: int
    n_rejected: int
    n_dropped: int
    n_timeout: int
    n_error: int
    achieved_qps: float
    latency_percentiles_ms: dict[str, float]
    queue_time_percentiles_ms: dict[str, float]
    mean_batch_size: float
    max_batch_size: int
    max_queue_depth: int
    queue_depth_series: tuple[tuple[float, int], ...] = field(default=())

    @property
    def n_shed(self) -> int:
        return self.n_rejected + self.n_dropped + self.n_timeout

    def to_dict(self, depth_series_limit: int = 200) -> dict:
        """A JSON-ready summary (depth series downsampled to ``limit`` points)."""
        series = list(self.queue_depth_series)
        if depth_series_limit and len(series) > depth_series_limit:
            stride = max(len(series) // depth_series_limit, 1)
            series = series[::stride]
        return {
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "duration_s": self.duration_s,
            "elapsed_s": self.elapsed_s,
            "n_submitted": self.n_submitted,
            "n_ok": self.n_ok,
            "n_rejected": self.n_rejected,
            "n_dropped": self.n_dropped,
            "n_timeout": self.n_timeout,
            "n_error": self.n_error,
            "n_shed": self.n_shed,
            "latency_percentiles_ms": self.latency_percentiles_ms,
            "queue_time_percentiles_ms": self.queue_time_percentiles_ms,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "max_queue_depth": self.max_queue_depth,
            "queue_depth_series": [[round(t, 4), d] for t, d in series],
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        p50 = self.latency_percentiles_ms.get("p50", float("nan"))
        p99 = self.latency_percentiles_ms.get("p99", float("nan"))
        return (
            f"LoadReport(offered={self.offered_qps:.0f} QPS, "
            f"achieved={self.achieved_qps:.0f} QPS, ok={self.n_ok}, "
            f"shed={self.n_shed}, p50={p50:.2f}ms, p99={p99:.2f}ms, "
            f"mean_batch={self.mean_batch_size:.1f})"
        )


class LoadGenerator:
    """Drives a front-end with an open-loop request schedule.

    ``requests`` is the workload to cycle through (estimate and route
    requests may be mixed; each is routed to its lane).  The generator
    submits on the arrival process's schedule regardless of how fast the
    server answers -- when it falls behind the schedule it catches up by
    submitting immediately, preserving the offered *count*.
    """

    def __init__(
        self,
        frontend: "ServingFrontend",
        requests: Sequence["EstimateRequest | RouteRequest"],
        arrivals: "PoissonArrivals | BurstArrivals",
        duration_s: float,
        deadline_s: float | None = None,
        depth_sample_interval_s: float = 0.01,
    ) -> None:
        if not requests:
            raise FrontendError("the load generator needs a non-empty workload")
        for request in requests:
            if not isinstance(request, (EstimateRequest, RouteRequest)):
                raise FrontendError(
                    "workload items must be EstimateRequest or RouteRequest, got "
                    f"{type(request).__name__}"
                )
        if not duration_s > 0:
            raise FrontendError(f"duration_s must be positive, got {duration_s}")
        self.frontend = frontend
        self.requests = list(requests)
        self.arrivals = arrivals
        self.duration_s = duration_s
        self.deadline_s = deadline_s
        self.depth_sample_interval_s = depth_sample_interval_s

    def run(self) -> LoadReport:
        """Submit the whole schedule, wait for quiescence, and summarise."""
        frontend = self.frontend
        offsets = self.arrivals.offsets(self.duration_s)
        workload = self.requests
        n_workload = len(workload)
        tickets: list[Ticket] = []
        sampler = DepthSampler(frontend.queue_depth, self.depth_sample_interval_s)
        sampler.start()
        started = time.perf_counter()
        try:
            for index in range(offsets.size):
                wait = started + offsets[index] - time.perf_counter()
                if wait > _MIN_SLEEP_S:
                    time.sleep(wait)
                request = workload[index % n_workload]
                if isinstance(request, EstimateRequest):
                    ticket = frontend.submit_estimate(request, deadline_s=self.deadline_s)
                else:
                    ticket = frontend.submit_route(request, deadline_s=self.deadline_s)
                tickets.append(ticket)
            frontend.drain()
        finally:
            depth_series = sampler.stop()
        elapsed = time.perf_counter() - started
        return self._summarise(tickets, depth_series, elapsed)

    def _summarise(
        self,
        tickets: list[Ticket],
        depth_series: list[tuple[float, int]],
        elapsed_s: float,
    ) -> LoadReport:
        counts = {
            STATUS_OK: 0,
            STATUS_REJECTED: 0,
            STATUS_DROPPED: 0,
            STATUS_TIMEOUT: 0,
            STATUS_ERROR: 0,
        }
        ok_latencies_ms: list[float] = []
        ok_queue_times_ms: list[float] = []
        batch_sizes: list[int] = []
        for ticket in tickets:
            response = ticket.result(timeout=30.0)
            counts[response.status] += 1
            if response.status == STATUS_OK:
                ok_latencies_ms.append(response.latency_s * 1e3)
                ok_queue_times_ms.append(response.queue_time_s * 1e3)
                batch_sizes.append(response.batch_size)
        offered_qps = len(tickets) / self.duration_s
        achieved_qps = counts[STATUS_OK] / elapsed_s if elapsed_s > 0 else 0.0
        return LoadReport(
            offered_qps=offered_qps,
            duration_s=self.duration_s,
            elapsed_s=elapsed_s,
            n_submitted=len(tickets),
            n_ok=counts[STATUS_OK],
            n_rejected=counts[STATUS_REJECTED],
            n_dropped=counts[STATUS_DROPPED],
            n_timeout=counts[STATUS_TIMEOUT],
            n_error=counts[STATUS_ERROR],
            achieved_qps=achieved_qps,
            latency_percentiles_ms=percentiles(ok_latencies_ms, DEFAULT_PERCENTILE_POINTS),
            queue_time_percentiles_ms=percentiles(
                ok_queue_times_ms, DEFAULT_PERCENTILE_POINTS
            ),
            mean_batch_size=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            max_batch_size=int(max(batch_sizes)) if batch_sizes else 0,
            max_queue_depth=max((depth for _, depth in depth_series), default=0),
            queue_depth_series=tuple(depth_series),
        )
