"""Serving statistics: percentile summaries, front-end counters, depth sampling.

:func:`percentiles` is the single percentile implementation shared by the
front-end's latency reporting and the benchmark harness
(``benchmarks/_bench_utils.percentiles`` delegates here), so p-values in
committed results and in live stats are computed identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..telemetry.sampling import GaugeSampler

#: The tail points the latency harness reports by default.
DEFAULT_PERCENTILE_POINTS = (50.0, 95.0, 99.0, 99.9)


def percentile_label(point: float) -> str:
    """``50 -> "p50"``, ``99.9 -> "p999"`` (the conventional latency names)."""
    text = f"{point:g}".replace(".", "")
    return f"p{text}"


def percentiles(
    values: Iterable[float],
    points: Sequence[float] = DEFAULT_PERCENTILE_POINTS,
) -> dict[str, float]:
    """Named percentiles of ``values``: ``{"p50": ..., "p95": ..., ...}``.

    Linear interpolation between order statistics (numpy's default), so
    small samples still produce stable, monotone tails.  An empty input
    returns an empty dict -- callers treat "no report" and "no data" the
    same way.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return {}
    for point in points:
        if not 0.0 <= point <= 100.0:
            raise ValueError(f"percentile points must be in [0, 100], got {point}")
    results = np.percentile(data, points)
    return {percentile_label(point): float(value) for point, value in zip(points, results)}


@dataclass(frozen=True)
class FrontendStats:
    """A point-in-time snapshot of the front-end's serving counters.

    ``submitted = ok + rejected + dropped + timeouts + errors + in_flight
    + queue_depth`` once traffic stops (every ticket resolves exactly
    once); while serving, the difference is work still in the pipe.
    """

    submitted: int
    ok: int
    rejected: int
    dropped: int
    timeouts: int
    errors: int
    batches: int
    batched_requests: int
    queue_depth: int
    max_queue_depth: int
    in_flight: int
    #: Edge-dirty invalidation passes routed through the front-end (the
    #: ingest pipeline's coherence hook).
    invalidations: int = 0

    @property
    def shed(self) -> int:
        """Requests answered with a typed shed response instead of service work."""
        return self.rejected + self.dropped + self.timeouts

    @property
    def mean_batch_size(self) -> float:
        """Mean coalesced batch size (0.0 before the first dispatch)."""
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FrontendStats(submitted={self.submitted}, ok={self.ok}, "
            f"shed={self.shed}, errors={self.errors}, "
            f"mean_batch={self.mean_batch_size:.1f}, "
            f"depth={self.queue_depth}/{self.max_queue_depth} max)"
        )


class DepthSampler(GaugeSampler):
    """Samples a depth gauge on a background thread: a queue-depth time series.

    A thin specialisation of the telemetry layer's
    :class:`~repro.telemetry.GaugeSampler` (integer depths, a
    ``depth-sampler`` thread name).  The latency harness runs one of these
    against :meth:`ServingFrontend.queue_depth` while the load generator
    drives traffic -- the *same* callable the live
    ``repro_frontend_queue_depth`` registry gauge reads, so the
    ``LoadReport`` depth series and the exported gauge can never disagree.
    """

    def __init__(self, gauge: Callable[[], int], interval_s: float = 0.01) -> None:
        super().__init__(
            gauge,
            interval_s=interval_s,
            transform=int,
            thread_name="depth-sampler",
        )

    def stop(self) -> list[tuple[float, int]]:
        """Stop sampling and return the ``(elapsed_s, depth)`` series."""
        return super().stop()
