"""The serving front-end: admission, coalescing workers, lifecycle, stats.

:class:`ServingFrontend` turns the :class:`~repro.service.CostEstimationService`
*library* into a traffic-serving daemon: callers submit estimate and route
requests from any number of threads and get :class:`~repro.frontend.Ticket`
futures back; a bounded :class:`~repro.frontend.AdmissionQueue` applies the
configured backpressure policy; persistent coalescer workers drain the
queue into kernel-sized batches and dispatch them through the service's
``submit_batch`` / ``route_batch`` -- so concurrent callers transparently
share one batched kernel pass, which no closed-loop caller ever triggers.

Coherence with live ingest is inherited, not reinvented: the front-end
serves *through* the service, whose epoch guards already ensure that a
batch computed concurrently with an
:meth:`~repro.service.CostEstimationService.invalidate_edges` pass cannot
re-insert stale entries into the caches.  :meth:`ServingFrontend.invalidate_edges`
is the ingest pipeline's hook -- it delegates to the service (counting the
pass in the front-end's stats), and in-flight batches stay correct because
every answer they produce was computed against a consistent estimator
family.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Iterable

from ..config import FrontendParameters
from ..exceptions import FrontendError
from ..routing.engine import RouteRequest
from ..service.requests import EstimateRequest
from .admission import AdmissionQueue
from .coalescer import BatchCoalescer, CoalescedBatch
from .requests import (
    LANE_ESTIMATE,
    LANE_ROUTE,
    STATUS_DROPPED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    FrontendResponse,
    Ticket,
)
from .stats import FrontendStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.service import CostEstimationService, InvalidationReport

#: How long an idle worker waits for traffic before re-checking its stop flag.
_IDLE_WAIT_S = 0.05


class ServingFrontend:
    """A thread-pool daemon serving batched traffic over one estimation service.

    Lifecycle: :meth:`start` spawns the coalescer workers, :meth:`drain`
    blocks until every admitted request has been answered, :meth:`stop`
    (optionally draining first) shuts the workers down and answers any
    leftover backlog with typed ``"dropped"`` responses -- nothing is ever
    silently lost.  The context-manager form (``with ServingFrontend(...)``)
    drains on clean exit and sheds the backlog on exceptions.
    """

    def __init__(
        self,
        service: "CostEstimationService",
        parameters: FrontendParameters | None = None,
    ) -> None:
        self.service = service
        self.parameters = parameters or FrontendParameters()
        self._queue: AdmissionQueue | None = None
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()
        # Counters (guarded by the stats lock).
        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._ok = 0
        self._rejected = 0
        self._dropped = 0
        self._timeouts = 0
        self._errors = 0
        self._batches = 0
        self._batched_requests = 0
        self._invalidations = 0
        #: Admitted tickets not yet fulfilled; what drain() waits on.
        self._pending = 0
        self._quiescent = threading.Condition(self._stats_lock)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingFrontend":
        """Create the admission queue and spawn the coalescer workers."""
        if self._workers:
            raise FrontendError("the front-end is already started")
        parameters = self.parameters
        self._stop.clear()
        self._queue = AdmissionQueue(
            parameters.queue_capacity,
            policy=parameters.backpressure,
            block_timeout_s=parameters.block_timeout_s,
        )
        for index in range(parameters.n_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"frontend-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        return self

    @property
    def running(self) -> bool:
        return bool(self._workers)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has been answered.

        Returns ``False`` if ``timeout`` elapsed first.  Draining cannot
        deadlock under overload: the queue is bounded and the workers keep
        consuming, so pending work strictly shrinks once submitters stop
        (concurrent submitters naturally extend the drain -- it waits for
        quiescence, not for a snapshot of the backlog).
        """
        if not self._workers:
            raise FrontendError("cannot drain a front-end that is not started")
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._quiescent:
            while self._pending > 0:
                if deadline is None:
                    self._quiescent.wait()
                else:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._quiescent.wait(remaining):
                        if self._pending <= 0:
                            break
                        return False
        return True

    def stop(self, drain: bool = True) -> None:
        """Shut the workers down (draining the backlog first by default).

        With ``drain=False`` the backlog is shed: every still-queued
        ticket is answered with a typed ``"dropped"`` response.
        """
        if not self._workers:
            return
        if drain:
            self.drain()
        self._stop.set()
        assert self._queue is not None
        leftovers = self._queue.close()
        for ticket in leftovers:
            self._fulfill(
                ticket,
                STATUS_DROPPED,
                detail="front-end stopped before this request was dispatched",
            )
        for worker in self._workers:
            worker.join()
        self._workers = []
        self._queue = None

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit_estimate(
        self, request: EstimateRequest, deadline_s: float | None = None
    ) -> Ticket:
        """Admit one estimate request; returns its (possibly pre-shed) ticket."""
        return self._submit(LANE_ESTIMATE, request, deadline_s)

    def submit_route(
        self, request: RouteRequest, deadline_s: float | None = None
    ) -> Ticket:
        """Admit one route request; returns its (possibly pre-shed) ticket."""
        return self._submit(LANE_ROUTE, request, deadline_s)

    def estimate(
        self,
        path,
        departure_time_s: float,
        method: str | None = None,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> FrontendResponse:
        """Blocking convenience: submit one estimate and wait for its response."""
        request = EstimateRequest(path=path, departure_time_s=departure_time_s, method=method)
        return self.submit_estimate(request, deadline_s=deadline_s).result(timeout)

    def route(
        self,
        request: RouteRequest,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> FrontendResponse:
        """Blocking convenience: submit one route query and wait for its response."""
        return self.submit_route(request, deadline_s=deadline_s).result(timeout)

    def _submit(
        self,
        lane: str,
        request: "EstimateRequest | RouteRequest",
        deadline_s: float | None,
    ) -> Ticket:
        queue = self._queue
        if queue is None:
            raise FrontendError("the front-end is not started; call start() or use `with`")
        expected = EstimateRequest if lane == LANE_ESTIMATE else RouteRequest
        if not isinstance(request, expected):
            raise FrontendError(
                f"the {lane} lane takes {expected.__name__}, got {type(request).__name__}"
            )
        if deadline_s is None:
            deadline_s = self.parameters.default_deadline_s
        if deadline_s is not None and deadline_s <= 0:
            raise FrontendError(f"deadline_s must be positive or None, got {deadline_s}")
        ticket = Ticket(lane, request, deadline_s=deadline_s)
        with self._stats_lock:
            self._submitted += 1
            # Optimistically pending: resolved by _fulfill, or rolled back
            # if the offer itself fails (shutdown race).
            self._pending += 1
        try:
            offered = queue.offer(ticket)
        except FrontendError:
            with self._quiescent:
                self._submitted -= 1
                self._pending -= 1
                if self._pending <= 0:
                    self._quiescent.notify_all()
            raise
        if offered.dropped is not None:
            self._fulfill(
                offered.dropped,
                STATUS_DROPPED,
                detail=(
                    f"shed by drop-oldest: {lane} lane full at {queue.capacity}"
                ),
            )
        if not offered.admitted:
            self._fulfill(
                ticket,
                STATUS_REJECTED,
                detail=f"{lane} lane full at {queue.capacity} ({queue.policy})",
            )
        return ticket

    # ------------------------------------------------------------------ #
    # Ingest coherence hook
    # ------------------------------------------------------------------ #
    def invalidate_edges(self, edge_ids: Iterable[int]) -> "InvalidationReport":
        """Apply an edge-dirty invalidation pass to the underlying service.

        The write path's hook (:class:`~repro.ingest.TrajectoryIngestPipeline`
        calls this when constructed with a ``frontend``): live appends stay
        coherent with in-flight batches because the service's epoch guard
        is bumped *before* entries are dropped -- a batch computed against
        the old state can complete (its answers were correct when
        computed) but can no longer re-populate the caches.
        """
        report = self.service.invalidate_edges(edge_ids)
        with self._stats_lock:
            self._invalidations += 1
        return report

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def queue_depth(self, lane: str | None = None) -> int:
        """Tickets currently queued (0 when stopped)."""
        queue = self._queue
        return 0 if queue is None else queue.depth(lane)

    def stats(self) -> FrontendStats:
        """A consistent snapshot of the serving counters."""
        queue = self._queue
        queue_stats = queue.stats() if queue is not None else {"depth": 0, "max_depth": 0}
        with self._stats_lock:
            resolved = (
                self._ok + self._rejected + self._dropped + self._timeouts + self._errors
            )
            return FrontendStats(
                submitted=self._submitted,
                ok=self._ok,
                rejected=self._rejected,
                dropped=self._dropped,
                timeouts=self._timeouts,
                errors=self._errors,
                batches=self._batches,
                batched_requests=self._batched_requests,
                queue_depth=queue_stats["depth"],
                max_queue_depth=queue_stats["max_depth"],
                in_flight=max(self._pending - queue_stats["depth"], 0),
                invalidations=self._invalidations,
            )

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        assert self._queue is not None
        coalescer = BatchCoalescer(
            self._queue,
            max_batch_size=self.parameters.max_batch_size,
            max_linger_ms=self.parameters.max_linger_ms,
        )
        while True:
            try:
                batch = coalescer.next_batch(wait_timeout_s=_IDLE_WAIT_S)
            except Exception:  # pragma: no cover - defensive
                if self._stop.is_set():
                    return
                continue
            if batch is None:
                if self._stop.is_set():
                    return
                continue
            self._serve_batch(batch)

    def _serve_batch(self, batch: CoalescedBatch) -> None:
        """Answer one coalesced batch: timeouts typed, live tickets dispatched."""
        for ticket in batch.expired:
            self._fulfill(
                ticket,
                STATUS_TIMEOUT,
                detail="deadline expired while queued",
                batch_size=0,
            )
        if not batch.live:
            return
        requests = [ticket.request for ticket in batch.live]
        size = len(batch.live)
        try:
            if batch.lane == LANE_ESTIMATE:
                responses = self.service.submit_batch(requests)
            else:
                responses = self.service.route_batch(requests)
        except Exception as error:
            detail = f"{type(error).__name__}: {error}"
            for ticket, queue_time in zip(batch.live, batch.queue_times_s):
                self._fulfill(
                    ticket,
                    STATUS_ERROR,
                    detail=detail,
                    queue_time_s=queue_time,
                    batch_size=size,
                )
            with self._stats_lock:
                self._batches += 1
                self._batched_requests += size
            return
        for ticket, response, queue_time in zip(batch.live, responses, batch.queue_times_s):
            self._fulfill(
                ticket,
                STATUS_OK,
                response=response,
                queue_time_s=queue_time,
                batch_size=size,
            )
        with self._stats_lock:
            self._batches += 1
            self._batched_requests += size

    def _fulfill(
        self,
        ticket: Ticket,
        status: str,
        response=None,
        detail: str | None = None,
        queue_time_s: float | None = None,
        batch_size: int = 0,
    ) -> None:
        """Resolve one ticket and update the counters/quiescence signal."""
        ticket._fulfill(
            status,
            response=response,
            detail=detail,
            queue_time_s=queue_time_s,
            batch_size=batch_size,
        )
        with self._quiescent:
            if status == STATUS_OK:
                self._ok += 1
            elif status == STATUS_REJECTED:
                self._rejected += 1
            elif status == STATUS_DROPPED:
                self._dropped += 1
            elif status == STATUS_TIMEOUT:
                self._timeouts += 1
            else:
                self._errors += 1
            self._pending -= 1
            if self._pending <= 0:
                self._quiescent.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "running" if self.running else "stopped"
        stats = self.stats()
        return (
            f"ServingFrontend({state}, submitted={stats.submitted}, ok={stats.ok}, "
            f"shed={stats.shed}, depth={stats.queue_depth})"
        )
