"""The serving front-end: admission, coalescing workers, lifecycle, stats.

:class:`ServingFrontend` turns the :class:`~repro.service.CostEstimationService`
*library* into a traffic-serving daemon: callers submit estimate and route
requests from any number of threads and get :class:`~repro.frontend.Ticket`
futures back; a bounded :class:`~repro.frontend.AdmissionQueue` applies the
configured backpressure policy; persistent coalescer workers drain the
queue into kernel-sized batches and dispatch them through the service's
``submit_batch`` / ``route_batch`` -- so concurrent callers transparently
share one batched kernel pass, which no closed-loop caller ever triggers.

Coherence with live ingest is inherited, not reinvented: the front-end
serves *through* the service, whose epoch guards already ensure that a
batch computed concurrently with an
:meth:`~repro.service.CostEstimationService.invalidate_edges` pass cannot
re-insert stale entries into the caches.  :meth:`ServingFrontend.invalidate_edges`
is the ingest pipeline's hook -- it delegates to the service (counting the
pass in the front-end's stats), and in-flight batches stay correct because
every answer they produce was computed against a consistent estimator
family.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Iterable

from ..config import FrontendParameters
from ..exceptions import FrontendError
from ..routing.engine import RouteRequest
from ..service.requests import EstimateRequest
from .admission import AdmissionQueue
from .coalescer import BatchCoalescer, CoalescedBatch
from .requests import (
    LANE_ESTIMATE,
    LANE_ROUTE,
    LANES,
    STATUS_DROPPED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    FrontendResponse,
    Ticket,
)
from .stats import FrontendStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.service import CostEstimationService, InvalidationReport
    from ..telemetry import MetricsRegistry, Telemetry
    from ..telemetry.metrics import LatencyHistogram

#: How long an idle worker waits for traffic before re-checking its stop flag.
_IDLE_WAIT_S = 0.05


class ServingFrontend:
    """A thread-pool daemon serving batched traffic over one estimation service.

    Lifecycle: :meth:`start` spawns the coalescer workers, :meth:`drain`
    blocks until every admitted request has been answered, :meth:`stop`
    (optionally draining first) shuts the workers down and answers any
    leftover backlog with typed ``"dropped"`` responses -- nothing is ever
    silently lost.  The context-manager form (``with ServingFrontend(...)``)
    drains on clean exit and sheds the backlog on exceptions.
    """

    def __init__(
        self,
        service: "CostEstimationService",
        parameters: FrontendParameters | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.service = service
        self.parameters = parameters or FrontendParameters()
        self._queue: AdmissionQueue | None = None
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()
        # Counters (guarded by the stats lock).
        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._ok = 0
        self._rejected = 0
        self._dropped = 0
        self._timeouts = 0
        self._errors = 0
        self._batches = 0
        self._batched_requests = 0
        self._invalidations = 0
        #: Admitted tickets not yet fulfilled; what drain() waits on.
        self._pending = 0
        #: Concurrent drain() calls in flight -- readiness probes report
        #: "draining" while any are waiting (guarded by the stats lock).
        self._draining = 0
        self._quiescent = threading.Condition(self._stats_lock)
        #: Optional telemetry hub.  ``None`` keeps the serving path free of
        #: any instrumentation work beyond the counters that already exist
        #: (the overhead benchmark gates the attached case at <= 3%).
        self.telemetry = telemetry
        # Sampling happens on the *worker* side, once per coalesced batch
        # (every ticket already carries its submit timestamp, so the
        # admission span can be reconstructed at dequeue): the submit path
        # pays nothing for tracing, and the per-request cost collapses to
        # one countdown update per batch.  Tickets shed before dequeue are
        # never traced -- traces describe the anatomy of dispatched
        # requests, and the shed counters already cover the rest.
        tracer = telemetry.tracer if telemetry is not None else None
        if tracer is not None and tracer.sample_every == 0:
            tracer = None
        self._tracer = tracer
        self._trace_every = tracer.sample_every if tracer is not None else 0
        self._trace_countdown = 0
        self._trace_lock = threading.Lock()
        self._latency_hists: "dict[str, LatencyHistogram]" = {}
        self._queue_wait_hists: "dict[str, LatencyHistogram]" = {}
        if telemetry is not None:
            self.register_metrics(telemetry.registry)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingFrontend":
        """Create the admission queue and spawn the coalescer workers."""
        if self._workers:
            raise FrontendError("the front-end is already started")
        parameters = self.parameters
        self._stop.clear()
        self._queue = AdmissionQueue(
            parameters.queue_capacity,
            policy=parameters.backpressure,
            block_timeout_s=parameters.block_timeout_s,
        )
        for index in range(parameters.n_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"frontend-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        return self

    @property
    def running(self) -> bool:
        return bool(self._workers)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has been answered.

        Returns ``False`` if ``timeout`` elapsed first.  Draining cannot
        deadlock under overload: the queue is bounded and the workers keep
        consuming, so pending work strictly shrinks once submitters stop
        (concurrent submitters naturally extend the drain -- it waits for
        quiescence, not for a snapshot of the backlog).
        """
        if not self._workers:
            raise FrontendError("cannot drain a front-end that is not started")
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._quiescent:
            self._draining += 1
            try:
                while self._pending > 0:
                    if deadline is None:
                        self._quiescent.wait()
                    else:
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0 or not self._quiescent.wait(remaining):
                            if self._pending <= 0:
                                break
                            return False
            finally:
                self._draining -= 1
        return True

    @property
    def draining(self) -> bool:
        """Whether any :meth:`drain` call is currently waiting (readiness
        probes flip not-ready during drains so traffic routes elsewhere)."""
        with self._stats_lock:
            return self._draining > 0

    def stop(self, drain: bool = True) -> None:
        """Shut the workers down (draining the backlog first by default).

        With ``drain=False`` the backlog is shed: every still-queued
        ticket is answered with a typed ``"dropped"`` response.
        """
        if not self._workers:
            return
        if drain:
            self.drain()
        self._stop.set()
        assert self._queue is not None
        leftovers = self._queue.close()
        for ticket in leftovers:
            self._fulfill(
                ticket,
                STATUS_DROPPED,
                detail="front-end stopped before this request was dispatched",
            )
        for worker in self._workers:
            worker.join()
        self._workers = []
        self._queue = None

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit_estimate(
        self, request: EstimateRequest, deadline_s: float | None = None
    ) -> Ticket:
        """Admit one estimate request; returns its (possibly pre-shed) ticket."""
        return self._submit(LANE_ESTIMATE, request, deadline_s)

    def submit_route(
        self, request: RouteRequest, deadline_s: float | None = None
    ) -> Ticket:
        """Admit one route request; returns its (possibly pre-shed) ticket."""
        return self._submit(LANE_ROUTE, request, deadline_s)

    def estimate(
        self,
        path,
        departure_time_s: float,
        method: str | None = None,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> FrontendResponse:
        """Blocking convenience: submit one estimate and wait for its response."""
        request = EstimateRequest(path=path, departure_time_s=departure_time_s, method=method)
        return self.submit_estimate(request, deadline_s=deadline_s).result(timeout)

    def route(
        self,
        request: RouteRequest,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> FrontendResponse:
        """Blocking convenience: submit one route query and wait for its response."""
        return self.submit_route(request, deadline_s=deadline_s).result(timeout)

    def _submit(
        self,
        lane: str,
        request: "EstimateRequest | RouteRequest",
        deadline_s: float | None,
    ) -> Ticket:
        queue = self._queue
        if queue is None:
            raise FrontendError("the front-end is not started; call start() or use `with`")
        expected = EstimateRequest if lane == LANE_ESTIMATE else RouteRequest
        if not isinstance(request, expected):
            raise FrontendError(
                f"the {lane} lane takes {expected.__name__}, got {type(request).__name__}"
            )
        if deadline_s is None:
            deadline_s = self.parameters.default_deadline_s
        if deadline_s is not None and deadline_s <= 0:
            raise FrontendError(f"deadline_s must be positive or None, got {deadline_s}")
        ticket = Ticket(lane, request, deadline_s=deadline_s)
        with self._stats_lock:
            self._submitted += 1
            # Optimistically pending: resolved by _fulfill, or rolled back
            # if the offer itself fails (shutdown race).
            self._pending += 1
        try:
            offered = queue.offer(ticket)
        except FrontendError:
            with self._quiescent:
                self._submitted -= 1
                self._pending -= 1
                if self._pending <= 0:
                    self._quiescent.notify_all()
            raise
        if offered.dropped is not None:
            self._fulfill(
                offered.dropped,
                STATUS_DROPPED,
                detail=(
                    f"shed by drop-oldest: {lane} lane full at {queue.capacity}"
                ),
            )
        if not offered.admitted:
            self._fulfill(
                ticket,
                STATUS_REJECTED,
                detail=f"{lane} lane full at {queue.capacity} ({queue.policy})",
            )
        return ticket

    # ------------------------------------------------------------------ #
    # Ingest coherence hook
    # ------------------------------------------------------------------ #
    def invalidate_edges(self, edge_ids: Iterable[int]) -> "InvalidationReport":
        """Apply an edge-dirty invalidation pass to the underlying service.

        The write path's hook (:class:`~repro.ingest.TrajectoryIngestPipeline`
        calls this when constructed with a ``frontend``): live appends stay
        coherent with in-flight batches because the service's epoch guard
        is bumped *before* entries are dropped -- a batch computed against
        the old state can complete (its answers were correct when
        computed) but can no longer re-populate the caches.
        """
        report = self.service.invalidate_edges(edge_ids)
        with self._stats_lock:
            self._invalidations += 1
        return report

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def queue_depth(self, lane: str | None = None) -> int:
        """Tickets currently queued (0 when stopped)."""
        queue = self._queue
        return 0 if queue is None else queue.depth(lane)

    @property
    def latency_histograms(self) -> "dict[str, LatencyHistogram]":
        """Per-lane end-to-end latency histograms (empty until telemetry is
        attached via :meth:`register_metrics`).  The SLO engine windows
        these; the dict is a copy, the histograms are live."""
        return dict(self._latency_hists)

    def stats(self) -> FrontendStats:
        """A consistent snapshot of the serving counters."""
        queue = self._queue
        queue_stats = queue.stats() if queue is not None else {"depth": 0, "max_depth": 0}
        with self._stats_lock:
            resolved = (
                self._ok + self._rejected + self._dropped + self._timeouts + self._errors
            )
            return FrontendStats(
                submitted=self._submitted,
                ok=self._ok,
                rejected=self._rejected,
                dropped=self._dropped,
                timeouts=self._timeouts,
                errors=self._errors,
                batches=self._batches,
                batched_requests=self._batched_requests,
                queue_depth=queue_stats["depth"],
                max_queue_depth=queue_stats["max_depth"],
                in_flight=max(self._pending - queue_stats["depth"], 0),
                invalidations=self._invalidations,
            )

    def register_metrics(self, registry: "MetricsRegistry") -> "MetricsRegistry":
        """Expose the front-end's live stats through a telemetry registry.

        Counters become callback-backed gauges over the bookkeeping the
        front-end already keeps (zero added serving-path work); the
        admission queue's depth/high-water counters read through
        ``self._queue`` dynamically, so they survive stop/start cycles.
        Per-lane latency and queue-wait histograms are also created here
        -- the only push-style metrics, observed once per fulfilled
        ticket.  Also registers the underlying service's metrics, so one
        registry covers the whole stack.
        """
        gauge = registry.gauge
        counters = (
            ("repro_frontend_submitted_total", "Requests submitted", lambda: self._submitted),
            ("repro_frontend_ok_total", "Requests answered ok", lambda: self._ok),
            ("repro_frontend_rejected_total", "Requests shed by admission (reject/block timeout)", lambda: self._rejected),
            ("repro_frontend_dropped_total", "Requests shed by drop-oldest or shutdown", lambda: self._dropped),
            ("repro_frontend_timeouts_total", "Requests whose deadline expired while queued", lambda: self._timeouts),
            ("repro_frontend_errors_total", "Requests answered with a typed error", lambda: self._errors),
            ("repro_frontend_batches_total", "Coalesced batches dispatched", lambda: self._batches),
            ("repro_frontend_batched_requests_total", "Requests dispatched inside coalesced batches", lambda: self._batched_requests),
            ("repro_frontend_invalidations_total", "Edge-dirty invalidation passes routed through the front-end", lambda: self._invalidations),
            ("repro_frontend_pending", "Admitted requests not yet answered", lambda: self._pending),
        )
        for name, help_text, callback in counters:
            gauge(name, help_text, callback=callback)
        gauge(
            "repro_frontend_queue_depth",
            "Tickets currently queued across lanes",
            callback=self.queue_depth,
        )
        gauge(
            "repro_frontend_queue_max_depth",
            "Queue depth high-water mark",
            callback=lambda: self._queue.stats()["max_depth"] if self._queue else 0,
        )
        for lane in LANES:
            self._latency_hists[lane] = registry.histogram(
                "repro_frontend_latency_seconds",
                "Submit-to-answer latency",
                labels={"lane": lane},
            )
            self._queue_wait_hists[lane] = registry.histogram(
                "repro_frontend_queue_wait_seconds",
                "Time from submit to batch dequeue",
                labels={"lane": lane},
            )
        self.service.register_metrics(registry)
        return registry

    def stats_snapshot(self) -> dict:
        """One JSON-ready snapshot of the whole serving stack, right now.

        Always includes the front-end counters and the service's
        consistent cache statistics; with a telemetry hub attached it also
        carries every registered metric series, tracing totals, and the
        current slow-query log.  This is the status/stats endpoint payload
        (ROADMAP item 2): whatever transport fronts the daemon can return
        it verbatim.
        """
        from dataclasses import asdict, is_dataclass

        stats = self.stats()
        frontend = asdict(stats)
        frontend["shed"] = stats.shed
        frontend["mean_batch_size"] = stats.mean_batch_size
        snapshot: dict = {
            "frontend": frontend,
            "service": {
                key: (asdict(value) if is_dataclass(value) else value)
                for key, value in self.service.stats().items()
            },
        }
        queue = self._queue
        if queue is not None:
            snapshot["admission"] = queue.stats()
        if self.telemetry is not None:
            snapshot["telemetry"] = self.telemetry.snapshot()
            snapshot["slow_queries"] = self.telemetry.slow_queries()
        return snapshot

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        assert self._queue is not None
        coalescer = BatchCoalescer(
            self._queue,
            max_batch_size=self.parameters.max_batch_size,
            max_linger_ms=self.parameters.max_linger_ms,
        )
        while True:
            try:
                batch = coalescer.next_batch(wait_timeout_s=_IDLE_WAIT_S)
            except Exception:  # pragma: no cover - defensive
                if self._stop.is_set():
                    return
                continue
            if batch is None:
                if self._stop.is_set():
                    return
                continue
            self._serve_batch(batch)

    def _serve_batch(self, batch: CoalescedBatch) -> None:
        """Answer one coalesced batch: timeouts typed, live tickets dispatched.

        Telemetry work rides inside the per-ticket loops the batch already
        pays for, never in extra passes: the sampled few tickets carrying a
        trace get their admission/coalesce/execute spans recorded inline
        (the admission/coalesce boundary is when the batch's *first* ticket
        left the queue -- before it is time waiting for a worker, after it
        is time waiting for the batch to fill), and the OK path hands its
        latencies to the histograms once per *batch* via ``observe_batch``
        rather than once per ticket.  The overhead benchmark gates the
        total cost of an attached hub at <= 3% of warm throughput.
        """
        traced_live = ()
        if self._tracer is not None:
            traced_live = self._assign_traces(batch)
        first = batch.first_dequeued_at_s
        dequeued = batch.dequeued_at_s
        for ticket in batch.expired:
            trace = ticket.trace
            if trace is not None:
                boundary = min(max(ticket.submitted_at_s, first), dequeued)
                trace.add_span("admission", ticket.submitted_at_s, boundary)
                trace.add_span("coalesce", boundary, dequeued)
            self._fulfill(
                ticket,
                STATUS_TIMEOUT,
                detail="deadline expired while queued",
                batch_size=0,
            )
        if not batch.live:
            return
        requests = [ticket.request for ticket in batch.live]
        size = len(batch.live)
        exec_started = time.perf_counter()
        try:
            if batch.lane == LANE_ESTIMATE:
                responses = self.service.submit_batch(requests)
            else:
                responses = self.service.route_batch(requests)
        except Exception as error:
            detail = f"{type(error).__name__}: {error}"
            for ticket, queue_time in zip(batch.live, batch.queue_times_s):
                trace = ticket.trace
                if trace is not None:
                    boundary = min(max(ticket.submitted_at_s, first), dequeued)
                    trace.add_span("admission", ticket.submitted_at_s, boundary)
                    trace.add_span("coalesce", boundary, dequeued)
                self._fulfill(
                    ticket,
                    STATUS_ERROR,
                    detail=detail,
                    queue_time_s=queue_time,
                    batch_size=size,
                )
            with self._stats_lock:
                self._batches += 1
                self._batched_requests += size
            return
        exec_ended = time.perf_counter()
        for index in traced_live:  # usually empty: only the sampled few
            ticket = batch.live[index]
            response = responses[index]
            trace = ticket.trace
            boundary = min(max(ticket.submitted_at_s, first), dequeued)
            trace.add_span("admission", ticket.submitted_at_s, boundary)
            trace.add_span("coalesce", boundary, dequeued)
            annotations = {
                "cache_hit": response.cache_hit,
                "source": response.source,
                "batch_size": size,
            }
            if batch.lane == LANE_ESTIMATE:
                timings = dict(response.estimate.timings_s)
                if timings:
                    annotations["estimator_timings_s"] = timings
            else:
                annotations["expansions"] = response.result.paths_evaluated
                annotations["truncated"] = response.result.truncated
            trace.add_span("execute", exec_started, exec_ended, **annotations)
        for ticket, response, queue_time in zip(batch.live, responses, batch.queue_times_s):
            self._fulfill(
                ticket,
                STATUS_OK,
                response=response,
                queue_time_s=queue_time,
                batch_size=size,
                observe=False,
            )
        hist = self._latency_hists.get(batch.lane)
        if hist is not None:
            # Two deferred observes per batch: every live ticket's latency
            # is its queue wait plus the shared dequeue-to-resolution tail,
            # so the coalescer's existing queue-time tuple is parked by
            # reference with the tail as a fold-time offset -- no per-batch
            # allocation.  Per-ticket resolve jitter inside the batch is
            # microseconds -- far below the histogram's bucket resolution --
            # and the counts still reconcile exactly with the front-end's
            # totals.
            tail = time.perf_counter() - dequeued
            hist.observe_batch(batch.queue_times_s, offset=tail)
            self._queue_wait_hists[batch.lane].observe_batch(batch.queue_times_s)
        with self._stats_lock:
            self._batches += 1
            self._batched_requests += size

    def _assign_traces(self, batch: CoalescedBatch) -> "Iterable[int]":
        """Pick every Nth dequeued ticket for tracing (one update per batch).

        The countdown walks the dequeue order across batches and workers,
        so ``sample_every=N`` still traces exactly one dispatched request
        in N (the very first one included) -- but the decision costs one
        small critical section per *batch* instead of arithmetic per
        request, and the submit path is entirely untouched.  Each picked
        ticket's trace is anchored on its own submit timestamp, so the
        trace duration and the response latency agree exactly.  Returns
        the picked indices into ``batch.live`` (the caller records their
        execution spans once the responses exist; expired picks are
        handled by the timeout loop's own trace check).
        """
        expired = batch.expired
        tickets = batch.live if not expired else batch.live + expired
        every = self._trace_every
        n = len(tickets)
        with self._trace_lock:
            countdown = self._trace_countdown
            if countdown >= n:
                # No pick lands in this batch: one subtraction and out.
                self._trace_countdown = countdown - n
                return ()
            picks = range(countdown, n, every)
            self._trace_countdown = countdown + len(picks) * every - n
        for index in picks:
            ticket = tickets[index]
            trace = self._tracer.trace(ticket.lane)
            trace.started_at_s = ticket.submitted_at_s
            ticket.trace = trace
        if not expired:
            return picks
        n_live = len(batch.live)
        return [index for index in picks if index < n_live]

    def _fulfill(
        self,
        ticket: Ticket,
        status: str,
        response=None,
        detail: str | None = None,
        queue_time_s: float | None = None,
        batch_size: int = 0,
        observe: bool = True,
    ) -> FrontendResponse:
        """Resolve one ticket and update the counters/quiescence signal.

        This is the single point every outcome flows through (ok, shed,
        timeout, error, dropped-on-close), so it is also where traces
        finish and latency histograms observe -- both strictly no-ops when
        no telemetry hub is attached.  The batched OK path passes
        ``observe=False`` and records the whole batch's latencies in one
        ``observe_batch`` call instead; the rare paths keep the per-ticket
        observe so every outcome still lands in the histograms.
        """
        resolved = ticket._fulfill(
            status,
            response=response,
            detail=detail,
            queue_time_s=queue_time_s,
            batch_size=batch_size,
        )
        if ticket.trace is not None and self._tracer is not None:
            # The lane is the trace's name and the batch size rides on the
            # execute span, so finishing needs no extra annotations.
            self._tracer.finish(ticket.trace, status)
        if observe:
            hist = self._latency_hists.get(ticket.lane)
            if hist is not None:
                hist.observe(resolved.latency_s)
                self._queue_wait_hists[ticket.lane].observe(resolved.queue_time_s)
        with self._quiescent:
            if status == STATUS_OK:
                self._ok += 1
            elif status == STATUS_REJECTED:
                self._rejected += 1
            elif status == STATUS_DROPPED:
                self._dropped += 1
            elif status == STATUS_TIMEOUT:
                self._timeouts += 1
            else:
                self._errors += 1
            self._pending -= 1
            if self._pending <= 0:
                self._quiescent.notify_all()
        return resolved

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "running" if self.running else "stopped"
        stats = self.stats()
        return (
            f"ServingFrontend({state}, submitted={stats.submitted}, ok={stats.ok}, "
            f"shed={stats.shed}, depth={stats.queue_depth})"
        )
