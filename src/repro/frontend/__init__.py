"""The async serving front-end (admission, coalescing, backpressure, load).

The subsystem that turns the :class:`~repro.service.CostEstimationService`
library into a traffic-serving daemon:

* :class:`ServingFrontend` -- lifecycle (``start`` / ``stop`` / ``drain``,
  context manager), thread-safe ``submit_estimate`` / ``submit_route``
  returning :class:`Ticket` futures, an ingest-side ``invalidate_edges``
  coherence hook, and serving statistics;
* :class:`AdmissionQueue` -- the bounded, multi-lane admission layer with
  explicit backpressure policies (``block`` / ``reject`` / ``drop-oldest``)
  surfaced as typed responses;
* :class:`BatchCoalescer` -- drains the queue into kernel-sized,
  lane-homogeneous batches (``max_batch_size`` / ``max_linger_ms``) so
  concurrent callers share one batched service call;
* :class:`Ticket` / :class:`FrontendResponse` -- the typed result model
  (``ok`` / ``rejected`` / ``dropped`` / ``timeout`` / ``error``);
* :class:`LoadGenerator` + :class:`PoissonArrivals` / :class:`BurstArrivals`
  / :class:`LoadReport` -- the open-loop tail-latency harness;
* :func:`percentiles` / :class:`FrontendStats` / :class:`DepthSampler` --
  measurement primitives shared with the benchmark suite.
"""

from .admission import AdmissionQueue, OfferResult, TakenBatch
from .coalescer import BatchCoalescer, CoalescedBatch
from .frontend import ServingFrontend
from .loadgen import BurstArrivals, LoadGenerator, LoadReport, PoissonArrivals
from .requests import (
    LANE_ESTIMATE,
    LANE_ROUTE,
    LANES,
    SHED_STATUSES,
    STATUS_DROPPED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    FrontendResponse,
    Ticket,
)
from .stats import DepthSampler, FrontendStats, percentile_label, percentiles

__all__ = [
    "AdmissionQueue",
    "BatchCoalescer",
    "BurstArrivals",
    "CoalescedBatch",
    "DepthSampler",
    "FrontendResponse",
    "FrontendStats",
    "LANE_ESTIMATE",
    "LANE_ROUTE",
    "LANES",
    "LoadGenerator",
    "LoadReport",
    "OfferResult",
    "PoissonArrivals",
    "SHED_STATUSES",
    "STATUS_DROPPED",
    "STATUS_ERROR",
    "TakenBatch",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "ServingFrontend",
    "Ticket",
    "percentile_label",
    "percentiles",
]
