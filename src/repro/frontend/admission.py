"""The bounded admission queue: per-lane bounds, explicit shed policies.

One :class:`AdmissionQueue` fronts the coalescer workers.  Estimate and
route tickets queue in separate *lanes* (so each lane can be drained into
its own kernel-sized batch), each lane bounded at ``capacity`` tickets.
What happens when a lane is full is the *backpressure policy*:

* ``"block"`` -- the submitting thread waits for room (optionally bounded
  by ``block_timeout_s``); classic producer-side backpressure;
* ``"reject"`` -- admission fails immediately; the caller's ticket is
  fulfilled with a typed ``"rejected"`` response;
* ``"drop-oldest"`` -- the new ticket is admitted by shedding the oldest
  queued ticket of the same lane, which is fulfilled with a typed
  ``"dropped"`` response (freshest-work-wins under overload).

All three keep queue depth -- and therefore memory -- bounded; the
difference is *who* pays under overload (producers, new arrivals, or the
backlog).  The design follows bounded job queues in serving systems
(ROADMAP item 2's exemplar) and the graceful-degradation argument of
Dynamic Hybrid Hash Join (PAPERS.md): shed explicitly, never collapse.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import NamedTuple

from ..config import (
    BACKPRESSURE_BLOCK,
    BACKPRESSURE_DROP_OLDEST,
    BACKPRESSURE_POLICIES,
    BACKPRESSURE_REJECT,
)
from ..exceptions import FrontendError
from .requests import LANES, Ticket

@dataclass(frozen=True)
class OfferResult:
    """Outcome of one admission attempt.

    The queue never fulfils tickets itself -- the front-end does, so its
    pending-work accounting (what :meth:`ServingFrontend.drain` waits on)
    sees every resolution.  ``dropped`` carries the ticket shed by the
    ``drop-oldest`` policy, still pending, for the caller to answer.
    """

    admitted: bool
    dropped: "Ticket | None" = None


class TakenBatch(NamedTuple):
    """One dequeued lane-homogeneous batch.

    ``first_popped_at_s`` is when the batch's *first* ticket left the
    queue -- the boundary between a ticket's admission wait and the
    coalescer linger it then sat through (tracing splits the two spans on
    it).  Tickets arriving during the linger have
    ``submitted_at_s > first_popped_at_s`` and an admission wait of zero.
    """

    lane: str
    tickets: list[Ticket]
    first_popped_at_s: float


class AdmissionQueue:
    """A bounded, multi-lane MPMC ticket queue with shed policies.

    Thread-safe: any number of submitting threads may ``offer`` while
    coalescer workers ``take_batch``.  ``close()`` wakes every waiter so
    shutdown never deadlocks on a blocked producer or an idle worker.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = BACKPRESSURE_BLOCK,
        block_timeout_s: float | None = None,
    ) -> None:
        if capacity < 1:
            raise FrontendError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise FrontendError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        self._lock = threading.Lock()
        #: Signalled when a ticket arrives or the queue closes (workers wait).
        self._not_empty = threading.Condition(self._lock)
        #: Signalled when room frees up in a lane (blocked producers wait).
        self._not_full = threading.Condition(self._lock)
        self._lanes: dict[str, deque[Ticket]] = {lane: deque() for lane in LANES}
        self._closed = False
        # Counters (guarded by the lock).
        self._admitted = 0
        self._rejected = 0
        self._dropped = 0
        self._max_depth = 0

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def offer(self, ticket: Ticket) -> OfferResult:
        """Admit ``ticket`` into its lane, applying the backpressure policy.

        Shedding is reported, never performed: a rejected offer comes back
        ``admitted=False`` and a ``drop-oldest`` eviction comes back in
        ``dropped``, both still unfulfilled -- answering them (typed
        responses) is the front-end's job.  Raises :class:`FrontendError`
        on a closed queue (API misuse, not load).
        """
        lane = self._lanes.get(ticket.lane)
        if lane is None:  # pragma: no cover - Ticket already validates
            raise FrontendError(f"unknown lane {ticket.lane!r}")
        with self._lock:
            if self._closed:
                raise FrontendError("cannot submit to a closed admission queue")
            dropped: Ticket | None = None
            if len(lane) >= self.capacity:
                if self.policy == BACKPRESSURE_REJECT:
                    self._rejected += 1
                    return OfferResult(admitted=False)
                if self.policy == BACKPRESSURE_DROP_OLDEST:
                    dropped = lane.popleft()
                    self._dropped += 1
                else:  # block
                    deadline = (
                        None
                        if self.block_timeout_s is None
                        else time.perf_counter() + self.block_timeout_s
                    )
                    while len(lane) >= self.capacity and not self._closed:
                        if deadline is None:
                            self._not_full.wait()
                        else:
                            remaining = deadline - time.perf_counter()
                            if remaining <= 0:
                                self._rejected += 1
                                return OfferResult(admitted=False)
                            self._not_full.wait(remaining)
                    if self._closed:
                        raise FrontendError(
                            "admission queue closed while blocked on a full lane"
                        )
            lane.append(ticket)
            self._admitted += 1
            depth = sum(len(q) for q in self._lanes.values())
            if depth > self._max_depth:
                self._max_depth = depth
            self._not_empty.notify()
            return OfferResult(admitted=True, dropped=dropped)

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def take_batch(
        self,
        max_batch: int,
        linger_s: float = 0.0,
        wait_timeout_s: float = 0.1,
    ) -> TakenBatch | None:
        """Dequeue one lane-homogeneous batch of up to ``max_batch`` tickets.

        Blocks up to ``wait_timeout_s`` for the first ticket (returning
        ``None`` when the queue stayed empty -- workers use this to poll
        their stop flag).  Once a first ticket is taken, the lane with the
        *oldest* head is chosen and up to ``linger_s`` is spent waiting
        for more same-lane arrivals to fill the batch; under load the
        batch fills immediately and the linger never elapses.

        Returns a :class:`TakenBatch` (``(lane, tickets,
        first_popped_at_s)``); after ``close()``, drains whatever remains
        and then returns ``None`` forever.
        """
        if max_batch < 1:
            raise FrontendError(f"max_batch must be >= 1, got {max_batch}")
        with self._lock:
            if not self._wait_not_empty(wait_timeout_s):
                return None
            lane_name = self._oldest_lane()
            assert lane_name is not None
            lane = self._lanes[lane_name]
            batch = self._pop_up_to(lane, max_batch)
            first_popped_at_s = time.perf_counter()
            if len(batch) < max_batch and linger_s > 0 and not self._closed:
                deadline = time.perf_counter() + linger_s
                while len(batch) < max_batch and not self._closed:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
                    batch.extend(self._pop_up_to(lane, max_batch - len(batch)))
            self._not_full.notify_all()
            return TakenBatch(lane_name, batch, first_popped_at_s)

    def _wait_not_empty(self, wait_timeout_s: float) -> bool:
        """Wait (holding the lock) until a ticket is queued; False on timeout."""
        if any(self._lanes.values()):
            return True
        if self._closed:
            return False
        deadline = time.perf_counter() + wait_timeout_s
        while not any(self._lanes.values()):
            if self._closed:
                return False
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return False
            self._not_empty.wait(remaining)
        return True

    def _oldest_lane(self) -> str | None:
        """The lane whose head ticket has waited longest (fairness across lanes)."""
        best: str | None = None
        best_submitted = float("inf")
        for name, lane in self._lanes.items():
            if lane and lane[0].submitted_at_s < best_submitted:
                best = name
                best_submitted = lane[0].submitted_at_s
        return best

    @staticmethod
    def _pop_up_to(lane: deque[Ticket], n: int) -> list[Ticket]:
        return [lane.popleft() for _ in range(min(n, len(lane)))]

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self) -> list[Ticket]:
        """Stop admitting, wake every waiter, and return the leftover backlog.

        The front-end fulfils the returned tickets (typed, per its
        shutdown semantics); the queue itself only guarantees nothing is
        silently lost.
        """
        with self._lock:
            self._closed = True
            leftovers = [ticket for lane in self._lanes.values() for ticket in lane]
            for lane in self._lanes.values():
                lane.clear()
            self._not_empty.notify_all()
            self._not_full.notify_all()
            return leftovers

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self, lane: str | None = None) -> int:
        """Queued tickets in ``lane`` (or across all lanes)."""
        with self._lock:
            if lane is not None:
                return len(self._lanes[lane])
            return sum(len(q) for q in self._lanes.values())

    def stats(self) -> dict[str, int]:
        """Admission counters: admitted / rejected / dropped / depth high-water."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "dropped": self._dropped,
                "depth": sum(len(q) for q in self._lanes.values()),
                "max_depth": self._max_depth,
            }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        depths = {name: len(lane) for name, lane in self._lanes.items()}
        return f"AdmissionQueue({depths}, capacity={self.capacity}, policy={self.policy!r})"
