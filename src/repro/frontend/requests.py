"""Typed tickets and responses of the serving front-end.

A client submits an :class:`~repro.service.EstimateRequest` or a
:class:`~repro.routing.RouteRequest` to the front-end and immediately
receives a :class:`Ticket` -- a small future that resolves to a
:class:`FrontendResponse` once a coalescer worker has dispatched the
request (or the admission layer has shed it).

Every outcome is a *typed response*, never an exception on the serving
path: overload produces ``"rejected"`` / ``"dropped"`` responses, an
expired deadline produces ``"timeout"``, and a dispatch failure produces
``"error"`` with the failure detail.  Only misuse of the API itself (e.g.
submitting to a stopped front-end) raises
:class:`~repro.exceptions.FrontendError`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..exceptions import FrontendError
from ..routing.engine import RouteRequest, RouteResponse
from ..service.requests import EstimateRequest, EstimateResponse

#: Admission lanes: estimate and route requests queue (and batch) separately,
#: so each lane feeds its own kernel-sized batch call.
LANE_ESTIMATE = "estimate"
LANE_ROUTE = "route"
LANES = (LANE_ESTIMATE, LANE_ROUTE)

#: Response statuses.  ``"ok"`` carries a service response; the rest are the
#: typed shed/failure outcomes.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_DROPPED = "dropped"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
SHED_STATUSES = (STATUS_REJECTED, STATUS_DROPPED, STATUS_TIMEOUT)


@dataclass(frozen=True)
class FrontendResponse:
    """The final outcome of one request submitted to the front-end.

    Attributes
    ----------
    status:
        ``"ok"``, ``"rejected"`` (admission queue full under the
        ``reject`` policy), ``"dropped"`` (shed by ``drop-oldest``),
        ``"timeout"`` (deadline expired while queued), or ``"error"``
        (the dispatch raised; see ``detail``).
    lane:
        ``"estimate"`` or ``"route"``.
    response:
        The underlying :class:`~repro.service.EstimateResponse` or
        :class:`~repro.routing.RouteResponse` when ``status == "ok"``,
        else ``None``.
    detail:
        Human-readable explanation for non-``ok`` statuses.
    latency_s:
        Submit-to-completion wall time (queueing + batching + service).
    queue_time_s:
        Time spent in the admission queue before a worker picked the
        request up (for shed requests: time until the shed decision).
    batch_size:
        Size of the coalesced batch this request was dispatched in
        (``0`` for requests that never reached a dispatch).
    """

    status: str
    lane: str
    response: "EstimateResponse | RouteResponse | None"
    detail: str | None
    latency_s: float
    queue_time_s: float
    batch_size: int

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def shed(self) -> bool:
        """True when the request was shed (rejected, dropped, or timed out)."""
        return self.status in SHED_STATUSES

    @property
    def estimate(self):
        """The wrapped :class:`~repro.core.estimator.CostEstimate` (ok estimates only)."""
        if not isinstance(self.response, EstimateResponse):
            raise FrontendError(f"no estimate on a {self.status!r} {self.lane} response")
        return self.response.estimate

    @property
    def result(self):
        """The wrapped :class:`~repro.routing.RouteResult` (ok routes only)."""
        if not isinstance(self.response, RouteResponse):
            raise FrontendError(f"no route result on a {self.status!r} {self.lane} response")
        return self.response.result

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FrontendResponse({self.lane}, status={self.status!r}, "
            f"batch={self.batch_size}, latency={self.latency_s * 1e3:.2f}ms)"
        )


class Ticket:
    """A pending front-end request: resolves to one :class:`FrontendResponse`.

    Created by :meth:`~repro.frontend.ServingFrontend.submit_estimate` /
    ``submit_route`` at admission time and fulfilled exactly once -- by a
    coalescer worker (dispatch, timeout) or by the admission layer itself
    (reject, drop).  ``submitted_at_s`` / ``deadline_at_s`` are
    ``time.perf_counter()`` readings, so deadline math is monotonic.
    """

    __slots__ = (
        "lane",
        "request",
        "submitted_at_s",
        "deadline_at_s",
        "trace",
        "_lock",
        "_event",
        "_response",
    )

    def __init__(
        self,
        lane: str,
        request: "EstimateRequest | RouteRequest",
        deadline_s: float | None = None,
    ) -> None:
        if lane not in LANES:
            raise FrontendError(f"lane must be one of {LANES}, got {lane!r}")
        self.lane = lane
        self.request = request
        #: A sampled :class:`~repro.telemetry.Trace` riding this request
        #: through the front-end (``None`` for untraced requests).
        self.trace = None
        self.submitted_at_s = time.perf_counter()
        self.deadline_at_s = (
            None if deadline_s is None else self.submitted_at_s + deadline_s
        )
        self._lock = threading.Lock()
        self._event: threading.Event | None = None
        self._response: FrontendResponse | None = None

    def done(self) -> bool:
        return self._response is not None

    def expired(self, now_s: float | None = None) -> bool:
        """Whether the ticket's deadline has passed (never, without one)."""
        if self.deadline_at_s is None:
            return False
        return (time.perf_counter() if now_s is None else now_s) >= self.deadline_at_s

    def result(self, timeout: float | None = None) -> FrontendResponse:
        """Block until the response is available (or ``timeout`` elapses)."""
        response = self._response
        if response is not None:
            return response
        with self._lock:
            response = self._response
            if response is not None:
                return response
            if self._event is None:
                self._event = threading.Event()
            event = self._event
        if not event.wait(timeout):
            raise FrontendError(f"ticket not fulfilled within {timeout}s")
        assert self._response is not None
        return self._response

    # ------------------------------------------------------------------ #
    # Fulfilment (front-end internals)
    # ------------------------------------------------------------------ #
    def _fulfill(
        self,
        status: str,
        response: "EstimateResponse | RouteResponse | None" = None,
        detail: str | None = None,
        queue_time_s: float | None = None,
        batch_size: int = 0,
    ) -> FrontendResponse:
        """Resolve the ticket (exactly once) and wake any waiter."""
        now = time.perf_counter()
        resolved = FrontendResponse(
            status=status,
            lane=self.lane,
            response=response,
            detail=detail,
            latency_s=now - self.submitted_at_s,
            queue_time_s=(
                now - self.submitted_at_s if queue_time_s is None else queue_time_s
            ),
            batch_size=batch_size,
        )
        with self._lock:
            if self._response is not None:  # pragma: no cover - defensive
                raise FrontendError("ticket fulfilled twice")
            self._response = resolved
            if self._event is not None:
                self._event.set()
        return resolved

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = self._response.status if self._response is not None else "pending"
        return f"Ticket({self.lane}, {state})"
