"""Dynamic batch coalescing: queued tickets -> kernel-sized service batches.

The estimation stack is fastest when it is fed *batches*: the service
deduplicates shared cache keys, a shared decomposition runs the MC kernel
once, and candidate-set CDFs collapse into one ``kernels.batch_cdf`` call.
Closed-loop callers never produce those batches -- concurrent open-loop
traffic does, if something coalesces it.  :class:`BatchCoalescer` is that
something: it drains the admission queue into lane-homogeneous batches
bounded by ``max_batch_size``, waiting at most ``max_linger_ms`` after the
first dequeue for stragglers (under load the batch fills instantly and the
linger never elapses; at low rates it bounds the coalescing latency).

Deadline enforcement happens here, at the last moment before dispatch: a
ticket whose deadline expired while it queued is split out of the batch so
the worker can answer it with a typed ``"timeout"`` response instead of
wasting service work on an answer nobody is waiting for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..exceptions import FrontendError
from .admission import AdmissionQueue
from .requests import Ticket


@dataclass(frozen=True)
class CoalescedBatch:
    """One drained batch: the live tickets plus any that expired queueing.

    ``queue_times_s[i]`` is how long ``live[i]`` waited in the admission
    queue (dequeue time minus submit time) -- the queueing component of
    its final latency.
    """

    lane: str
    live: tuple[Ticket, ...]
    expired: tuple[Ticket, ...]
    dequeued_at_s: float
    #: When the batch's first ticket left the queue -- the boundary between
    #: admission wait and coalescer linger (tracing splits spans on it).
    first_dequeued_at_s: float = 0.0
    queue_times_s: tuple[float, ...] = field(default=())

    @property
    def size(self) -> int:
        return len(self.live)


class BatchCoalescer:
    """Drains an :class:`AdmissionQueue` into dispatchable batches."""

    def __init__(
        self,
        queue: AdmissionQueue,
        max_batch_size: int,
        max_linger_ms: float = 0.0,
    ) -> None:
        if max_batch_size < 1:
            raise FrontendError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_linger_ms < 0:
            raise FrontendError(f"max_linger_ms must be >= 0, got {max_linger_ms}")
        self.queue = queue
        self.max_batch_size = max_batch_size
        self.max_linger_ms = max_linger_ms

    def next_batch(self, wait_timeout_s: float = 0.1) -> CoalescedBatch | None:
        """The next lane-homogeneous batch, or ``None`` when none arrived.

        ``None`` is the worker's cue to re-check its stop flag; it does
        not mean the front-end is done.
        """
        taken = self.queue.take_batch(
            self.max_batch_size,
            linger_s=self.max_linger_ms / 1e3,
            wait_timeout_s=wait_timeout_s,
        )
        if taken is None:
            return None
        lane, tickets, first_popped_at_s = taken
        if not tickets:
            return None
        now = time.perf_counter()
        live: list[Ticket] = []
        expired: list[Ticket] = []
        for ticket in tickets:
            (expired if ticket.expired(now) else live).append(ticket)
        return CoalescedBatch(
            lane=lane,
            live=tuple(live),
            expired=tuple(expired),
            dequeued_at_s=now,
            first_dequeued_at_s=first_popped_at_s,
            queue_times_s=tuple(now - ticket.submitted_at_s for ticket in live),
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BatchCoalescer(max_batch={self.max_batch_size}, "
            f"linger={self.max_linger_ms}ms)"
        )
