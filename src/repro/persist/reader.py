"""Snapshot reader: zero-copy restore of graphs, stores, and warm caches.

:func:`restore_snapshot` rebuilds the live objects a serving process needs
-- the :class:`~repro.core.hybrid_graph.HybridGraph` (instantiated
variables, speed-limit fallback cache), the trajectory store, and the
service's exported warm cache entries -- **without touching raw GPS data**:
everything comes from the snapshot's columnar arrays.

With ``mmap=True`` (the default) the arrays are loaded via
``numpy.load(..., mmap_mode="r")`` and the restored histograms adopt
contiguous *slices* of those maps
(:meth:`~repro.histograms.univariate.Histogram1D._adopt_arrays` /
:meth:`~repro.histograms.multivariate.MultiHistogram._adopt_cells`), so the
distributions are read-only views into the snapshot files: restore cost is
dominated by object construction, pages fault in lazily on first query,
and N worker processes restoring the same snapshot share one page cache --
the multi-process warm boot of ``examples/snapshot_serving.py``.

Restores are **bit-exact**: the adopted arrays are never renormalised or
re-sorted, so a restored graph serves estimates identical to the process
that wrote the snapshot (and, because the builder seeds its RNG per
variable, identical to a cold rebuild from the same trajectories).

Delta snapshots restore recursively: the base chain is restored first,
then each delta drops the base variables touching its dirty-edge set,
re-adds the delta's (current) versions, appends its store segment, and
filters inherited cache entries the same way the live service's targeted
invalidation would have.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path as FSPath

import numpy as np

from ..config import EstimatorParameters
from ..core.estimator import CostEstimate
from ..core.hybrid_graph import HybridGraph
from ..core.variables import (
    SOURCE_SPEED_LIMIT,
    SOURCE_TRAJECTORIES,
    InstantiatedVariable,
)
from ..exceptions import PersistError
from ..histograms.multivariate import MultiHistogram
from ..histograms.univariate import Histogram1D
from ..roadnet.graph import RoadNetwork
from ..roadnet.path import Path
from ..timeutil import all_intervals
from ..trajectories.matched import EdgeTraversal, MatchedTrajectory
from ..trajectories.mutable import MutableTrajectoryStore
from ..trajectories.store import TrajectoryStore
from . import format as fmt

#: Guard against pathological (cyclic or unboundedly deep) delta chains.
_MAX_CHAIN_DEPTH = 64


@dataclass
class RestoredSnapshot:
    """Everything a snapshot (or delta chain) restores.

    ``graph`` / ``store`` are ``None`` when the snapshot was written
    without them (e.g. a store-only snapshot from a detached pipeline).
    ``cache_entries`` are ``(cache key, estimate)`` pairs ready for
    :meth:`~repro.service.CostEstimationService.import_cache_entries`.
    """

    manifest: dict
    graph: HybridGraph | None
    store: TrajectoryStore | None
    cache_entries: list[tuple[tuple, CostEstimate]] = field(default_factory=list)
    #: Snapshot directories restored, base-first (length 1 for full snapshots).
    chain: tuple[str, ...] = ()

    @property
    def epoch(self) -> int:
        """The ingest epoch (store version) the snapshot captures."""
        return int(self.manifest.get("epoch", 0))

    @property
    def kind(self) -> str:
        return self.manifest.get("kind", fmt.KIND_FULL)


# --------------------------------------------------------------------- #
# Section decoders
# --------------------------------------------------------------------- #
def _decode_network(directory, manifest, mmap: bool) -> RoadNetwork:
    meta = manifest["network"]
    load = lambda name: fmt.load_array(directory, manifest, name, mmap=mmap)  # noqa: E731
    network = RoadNetwork(name=meta["name"])
    categories = meta["categories"]
    vertex_ids = load("net_vertex_ids")
    vertex_x = load("net_vertex_x")
    vertex_y = load("net_vertex_y")
    for vertex_id, x, y in zip(vertex_ids, vertex_x, vertex_y):
        network.add_vertex(int(vertex_id), float(x), float(y))
    edge_ids = load("net_edge_ids")
    sources = load("net_edge_source")
    targets = load("net_edge_target")
    lengths = load("net_edge_length_m")
    speeds = load("net_edge_speed_kmh")
    category_codes = load("net_edge_category")
    for edge_id, source, target, length, speed, code in zip(
        edge_ids, sources, targets, lengths, speeds, category_codes
    ):
        network.add_edge(
            int(source),
            int(target),
            length_m=float(length),
            speed_limit_kmh=float(speed),
            category=categories[int(code)],
            edge_id=int(edge_id),
        )
    return network


def decode_variables(directory, manifest, alpha_minutes: int, mmap: bool = True) -> list[InstantiatedVariable]:
    """Reconstruct the instantiated variables of a snapshot's graph section."""
    load = lambda name: fmt.load_array(directory, manifest, name, mmap=mmap)  # noqa: E731
    intervals = all_intervals(alpha_minutes)
    variables: list[InstantiatedVariable] = []

    uni_edge = load("uni_edge")
    uni_interval = load("uni_interval")
    uni_support = load("uni_support")
    uni_fallback = load("uni_is_fallback_source")
    uni_offsets = load("uni_offsets")
    uni_lows = load("uni_lows")
    uni_highs = load("uni_highs")
    uni_probs = load("uni_probs")
    for i in range(uni_edge.size):
        start, stop = int(uni_offsets[i]), int(uni_offsets[i + 1])
        histogram = Histogram1D._adopt_arrays(
            uni_lows[start:stop], uni_highs[start:stop], uni_probs[start:stop]
        )
        variables.append(
            InstantiatedVariable(
                path=Path([int(uni_edge[i])]),
                interval=intervals[int(uni_interval[i])],
                distribution=histogram,
                support=int(uni_support[i]),
                source=SOURCE_SPEED_LIMIT if uni_fallback[i] else SOURCE_TRAJECTORIES,
            )
        )

    multi_interval = load("multi_interval")
    multi_support = load("multi_support")
    path_offsets = load("multi_path_offsets")
    path_edges = load("multi_path_edges")
    boundary_offsets = load("multi_boundary_offsets")
    boundaries = load("multi_boundaries")
    cell_offsets = load("multi_cell_offsets")
    cell_index_offsets = load("multi_cell_index_offsets")
    cell_indices = load("multi_cell_indices")
    cell_probs = load("multi_cell_probs")
    boundary_cursor = 0
    for i in range(multi_interval.size):
        path_start, path_stop = int(path_offsets[i]), int(path_offsets[i + 1])
        dims = [int(edge) for edge in path_edges[path_start:path_stop]]
        dim_boundaries = []
        for _ in dims:
            b_start = int(boundary_offsets[boundary_cursor])
            b_stop = int(boundary_offsets[boundary_cursor + 1])
            dim_boundaries.append(boundaries[b_start:b_stop])
            boundary_cursor += 1
        n_cells = int(cell_offsets[i + 1]) - int(cell_offsets[i])
        flat_start, flat_stop = int(cell_index_offsets[i]), int(cell_index_offsets[i + 1])
        indices = cell_indices[flat_start:flat_stop].reshape(n_cells, len(dims))
        probs = cell_probs[int(cell_offsets[i]) : int(cell_offsets[i + 1])]
        joint = MultiHistogram._adopt_cells(dims, dim_boundaries, indices, probs)
        variables.append(
            InstantiatedVariable(
                path=Path(dims),
                interval=intervals[int(multi_interval[i])],
                distribution=joint,
                support=int(multi_support[i]),
                source=SOURCE_TRAJECTORIES,
            )
        )
    return variables


def _decode_graph(directory, manifest, mmap: bool) -> HybridGraph:
    parameters = EstimatorParameters(**manifest["estimator_parameters"])
    network = _decode_network(directory, manifest, mmap)
    graph = HybridGraph(network, parameters)
    for variable in decode_variables(directory, manifest, parameters.alpha_minutes, mmap):
        graph.add_variable(variable)
    _prime_fallbacks(graph, directory, manifest, mmap)
    return graph


def _prime_fallbacks(graph: HybridGraph, directory, manifest, mmap: bool) -> None:
    intervals = all_intervals(graph.parameters.alpha_minutes)
    fb_edge = fmt.load_array(directory, manifest, "fb_edge", mmap=mmap)
    fb_interval = fmt.load_array(directory, manifest, "fb_interval", mmap=mmap)
    for edge_id, interval_index in zip(fb_edge, fb_interval):
        # Re-derives the deterministic speed-limit uniform and caches it;
        # keys shadowed by a real variable (possible after a delta) are
        # simply not re-cached.
        graph.unit_variable(int(edge_id), intervals[int(interval_index)])


def decode_trajectories(directory, manifest, mmap: bool = True) -> list[MatchedTrajectory]:
    """Reconstruct the matched trajectories of a snapshot's store section."""
    load = lambda name: fmt.load_array(directory, manifest, name, mmap=mmap)  # noqa: E731
    traj_ids = load("traj_ids")
    offsets = load("traj_offsets")
    edges = load("traj_edges")
    entries = load("traj_entry_s")
    costs = load("traj_costs")
    trajectories = []
    for i in range(traj_ids.size):
        start, stop = int(offsets[i]), int(offsets[i + 1])
        trajectories.append(
            MatchedTrajectory(
                int(traj_ids[i]),
                [
                    EdgeTraversal(int(edge), float(entry), float(cost))
                    for edge, entry, cost in zip(
                        edges[start:stop], entries[start:stop], costs[start:stop]
                    )
                ],
            )
        )
    return trajectories


def _build_store(type_name: str, trajectories) -> TrajectoryStore:
    if type_name == "MutableTrajectoryStore":
        return MutableTrajectoryStore(trajectories)
    return TrajectoryStore(trajectories)


def decode_cache_entries(
    directory, manifest, mmap: bool = True
) -> list[tuple[tuple, CostEstimate]]:
    """Reconstruct exported warm-cache entries as ``(key, estimate)`` pairs."""
    cache_meta = manifest.get("cache") or {}
    if not cache_meta.get("n_entries"):
        return []
    methods = cache_meta["methods"]
    load = lambda name: fmt.load_array(directory, manifest, name, mmap=mmap)  # noqa: E731
    interval = load("cache_interval")
    method_codes = load("cache_method")
    departures = load("cache_departure_s")
    entropies = load("cache_entropy")
    path_offsets = load("cache_path_offsets")
    path_edges = load("cache_path_edges")
    hist_offsets = load("cache_hist_offsets")
    lows = load("cache_lows")
    highs = load("cache_highs")
    probs = load("cache_probs")
    entries: list[tuple[tuple, CostEstimate]] = []
    for i in range(interval.size):
        p_start, p_stop = int(path_offsets[i]), int(path_offsets[i + 1])
        edge_ids = tuple(int(edge) for edge in path_edges[p_start:p_stop])
        h_start, h_stop = int(hist_offsets[i]), int(hist_offsets[i + 1])
        histogram = Histogram1D._adopt_arrays(
            lows[h_start:h_stop], highs[h_start:h_stop], probs[h_start:h_stop]
        )
        method = methods[int(method_codes[i])]
        key = (edge_ids, int(interval[i]), method)
        estimate = CostEstimate(
            path=Path(edge_ids),
            departure_time_s=float(departures[i]),
            histogram=histogram,
            method=method,
            decomposition=None,
            entropy=float(entropies[i]),
        )
        entries.append((key, estimate))
    return entries


# --------------------------------------------------------------------- #
# Restore (full snapshots and delta chains)
# --------------------------------------------------------------------- #
def restore_snapshot(directory, mmap: bool = True, _depth: int = 0) -> RestoredSnapshot:
    """Restore a snapshot directory (recursively resolving delta chains)."""
    if _depth > _MAX_CHAIN_DEPTH:
        raise PersistError(
            f"delta chain deeper than {_MAX_CHAIN_DEPTH} snapshots at "
            f"{os.fspath(directory)}; compact the chain (repro.persist.compact_snapshot)"
        )
    directory = FSPath(directory)
    manifest = fmt.read_manifest(directory)
    if manifest["kind"] == fmt.KIND_DELTA:
        base_directory = (directory / manifest["base"]).resolve()
        base = restore_snapshot(base_directory, mmap=mmap, _depth=_depth + 1)
        return _apply_delta(base, directory, manifest, mmap)

    graph = _decode_graph(directory, manifest, mmap) if manifest.get("graph") else None
    store = None
    if manifest.get("store"):
        store = _build_store(
            manifest["store"]["type"], decode_trajectories(directory, manifest, mmap)
        )
    cache_entries = decode_cache_entries(directory, manifest, mmap)
    return RestoredSnapshot(
        manifest=manifest,
        graph=graph,
        store=store,
        cache_entries=cache_entries,
        chain=(str(directory),),
    )


def _apply_delta(
    base: RestoredSnapshot, directory: FSPath, manifest: dict, mmap: bool
) -> RestoredSnapshot:
    """Apply one delta snapshot on top of its restored base."""
    if base.epoch != manifest.get("base_epoch"):
        raise PersistError(
            f"delta snapshot {directory} was written against epoch "
            f"{manifest.get('base_epoch')}, but its base chain restored epoch "
            f"{base.epoch}; the base snapshot was regenerated or the chain is mixed up"
        )
    dirty = frozenset(int(edge) for edge in manifest.get("dirty_edges", ()))

    graph = base.graph
    if manifest.get("graph") is not None:
        if graph is None:
            raise PersistError(
                f"delta snapshot {directory} carries graph columns but its base has no graph"
            )
        graph.discard_variables_touching(dirty)
        for variable in decode_variables(
            directory, manifest, graph.parameters.alpha_minutes, mmap
        ):
            graph.add_variable(variable)
        _prime_fallbacks(graph, directory, manifest, mmap)

    store = base.store
    if manifest.get("store") is not None:
        segment_offset = int(manifest["store"]["segment_offset"])
        base_trajectories = store.trajectories if store is not None else []
        if len(base_trajectories) != segment_offset:
            raise PersistError(
                f"delta snapshot {directory} expects a base store of "
                f"{segment_offset} trajectories, found {len(base_trajectories)}"
            )
        segment = decode_trajectories(directory, manifest, mmap)
        store = _build_store(manifest["store"]["type"], base_trajectories + segment)

    # Inherited warm-cache entries age the same way the live service's
    # targeted invalidation ages them: entries on paths touching the dirty
    # set are dropped; entries on disjoint paths stay valid.
    cache_entries = [
        (key, estimate)
        for key, estimate in base.cache_entries
        if dirty.isdisjoint(key[0])
    ]
    cache_entries.extend(decode_cache_entries(directory, manifest, mmap))

    return RestoredSnapshot(
        manifest=manifest,
        graph=graph,
        store=store,
        cache_entries=cache_entries,
        chain=base.chain + (str(directory),),
    )


def snapshot_info(directory) -> dict:
    """The manifest of a snapshot, validated but without restoring anything."""
    return fmt.read_manifest(directory)
