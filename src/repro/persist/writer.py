"""Columnar snapshot writer: hybrid graph, stores, and warm caches to disk.

The encoders exploit the array-native storage PR 3 introduced: a
:class:`~repro.histograms.univariate.Histogram1D` already *is* a
``(lows, highs, probs)`` float64 triple and a
:class:`~repro.histograms.multivariate.MultiHistogram` already *is* sparse
``(boundaries, cell indices, cell probabilities)`` arrays, so serialisation
is concatenation plus offset bookkeeping -- no per-bucket objects, no
pickling.  Every section becomes a handful of flat arrays:

* ``net_*``    -- the road network (vertices, edges, category codes);
* ``uni_*``    -- rank-one variables (one histogram triple per variable,
  concatenated, with ``uni_offsets`` delimiting each variable's slice);
* ``multi_*``  -- joint variables (path edges, per-dimension boundaries,
  sparse cells, all concatenated with offset arrays);
* ``fb_*``     -- speed-limit fallback *keys* only (the distributions are
  deterministic functions of edge attributes and are re-derived on load);
* ``traj_*``   -- matched trajectories (edge ids, entry times, costs);
* ``cache_*``  -- exported warm result-cache entries (key columns plus one
  histogram triple per cached estimate).

Variables are sorted by ``(path edge ids, interval index)`` before
encoding, so writing the same graph twice produces byte-identical blobs.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from pathlib import Path as FSPath
from typing import Iterable, Sequence

import numpy as np

from ..config import PersistParameters
from ..core.estimator import CostEstimate
from ..core.hybrid_graph import HybridGraph
from ..core.variables import SOURCE_SPEED_LIMIT, InstantiatedVariable
from ..exceptions import PersistError
from ..histograms.multivariate import MultiHistogram
from ..histograms.univariate import Histogram1D
from ..roadnet.graph import RoadNetwork
from ..trajectories.matched import MatchedTrajectory
from ..trajectories.mutable import MutableTrajectoryStore, TrajectorySnapshot
from ..trajectories.store import TrajectoryStore
from . import format as fmt


def _concat(chunks: list[np.ndarray], dtype) -> np.ndarray:
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.asarray(chunk, dtype=dtype) for chunk in chunks])


def _offsets(lengths: Iterable[int]) -> np.ndarray:
    return np.concatenate([[0], np.cumsum(np.fromiter(lengths, dtype=np.int64))]).astype(
        np.int64
    )


# --------------------------------------------------------------------- #
# Section encoders
# --------------------------------------------------------------------- #
def encode_network(network: RoadNetwork) -> tuple[dict[str, np.ndarray], dict]:
    """The road network as flat vertex/edge columns plus a category table."""
    vertices = sorted(network.vertices(), key=lambda v: v.vertex_id)
    edges = sorted(network.edges(), key=lambda e: e.edge_id)
    categories = sorted({edge.category for edge in edges})
    category_code = {category: code for code, category in enumerate(categories)}
    arrays = {
        "net_vertex_ids": np.array([v.vertex_id for v in vertices], dtype=np.int64),
        "net_vertex_x": np.array([v.location.x for v in vertices], dtype=float),
        "net_vertex_y": np.array([v.location.y for v in vertices], dtype=float),
        "net_edge_ids": np.array([e.edge_id for e in edges], dtype=np.int64),
        "net_edge_source": np.array([e.source for e in edges], dtype=np.int64),
        "net_edge_target": np.array([e.target for e in edges], dtype=np.int64),
        "net_edge_length_m": np.array([e.length_m for e in edges], dtype=float),
        "net_edge_speed_kmh": np.array([e.speed_limit_kmh for e in edges], dtype=float),
        "net_edge_category": np.array(
            [category_code[e.category] for e in edges], dtype=np.int64
        ),
    }
    meta = {
        "name": network.name,
        "categories": categories,
        "n_vertices": len(vertices),
        "n_edges": len(edges),
    }
    return arrays, meta


def encode_variables(
    variables: Sequence[InstantiatedVariable],
) -> tuple[dict[str, np.ndarray], dict]:
    """Instantiated variables as two columnar groups (by distribution type)."""
    univariate = sorted(
        (v for v in variables if isinstance(v.distribution, Histogram1D)),
        key=lambda v: (v.path.edge_ids, v.interval.index),
    )
    multivariate = sorted(
        (v for v in variables if isinstance(v.distribution, MultiHistogram)),
        key=lambda v: (v.path.edge_ids, v.interval.index),
    )

    uni_lows, uni_highs, uni_probs = [], [], []
    for variable in univariate:
        lows, highs, probs = variable.distribution.as_triple()
        uni_lows.append(lows)
        uni_highs.append(highs)
        uni_probs.append(probs)
    arrays: dict[str, np.ndarray] = {
        "uni_edge": np.array([v.path.edge_ids[0] for v in univariate], dtype=np.int64),
        "uni_interval": np.array([v.interval.index for v in univariate], dtype=np.int64),
        "uni_support": np.array([v.support for v in univariate], dtype=np.int64),
        "uni_is_fallback_source": np.array(
            [v.source == SOURCE_SPEED_LIMIT for v in univariate], dtype=np.int64
        ),
        "uni_offsets": _offsets(v.distribution.n_buckets for v in univariate),
        "uni_lows": _concat(uni_lows, float),
        "uni_highs": _concat(uni_highs, float),
        "uni_probs": _concat(uni_probs, float),
    }

    path_chunks, boundary_chunks, index_chunks, prob_chunks = [], [], [], []
    boundary_lengths: list[int] = []
    for variable in multivariate:
        joint: MultiHistogram = variable.distribution
        path_chunks.append(np.array(variable.path.edge_ids, dtype=np.int64))
        for dim in joint.dims:
            edges = joint.boundaries_of(dim)
            boundary_chunks.append(edges)
            boundary_lengths.append(int(edges.size))
        index_chunks.append(np.asarray(joint.cell_indices).ravel())
        prob_chunks.append(joint.cell_probabilities)
    arrays.update(
        {
            "multi_interval": np.array(
                [v.interval.index for v in multivariate], dtype=np.int64
            ),
            "multi_support": np.array([v.support for v in multivariate], dtype=np.int64),
            "multi_path_offsets": _offsets(len(v.path) for v in multivariate),
            "multi_path_edges": _concat(path_chunks, np.int64),
            "multi_boundary_offsets": _offsets(boundary_lengths),
            "multi_boundaries": _concat(boundary_chunks, float),
            "multi_cell_offsets": _offsets(
                v.distribution.n_hyper_buckets() for v in multivariate
            ),
            "multi_cell_index_offsets": _offsets(
                v.distribution.n_hyper_buckets() * len(v.path) for v in multivariate
            ),
            "multi_cell_indices": _concat(index_chunks, np.int64),
            "multi_cell_probs": _concat(prob_chunks, float),
        }
    )
    meta = {"n_univariate": len(univariate), "n_multivariate": len(multivariate)}
    return arrays, meta


def encode_fallbacks(graph: HybridGraph) -> dict[str, np.ndarray]:
    """Fallback-cache keys; the uniform distributions are re-derived on load."""
    keys = graph.fallback_keys()
    return {
        "fb_edge": np.array([edge_id for edge_id, _ in keys], dtype=np.int64),
        "fb_interval": np.array([index for _, index in keys], dtype=np.int64),
    }


def encode_trajectories(
    trajectories: Sequence[MatchedTrajectory],
) -> tuple[dict[str, np.ndarray], dict]:
    """Matched trajectories as flat traversal columns with per-trajectory offsets."""
    edge_chunks, entry_chunks, cost_chunks = [], [], []
    for trajectory in trajectories:
        traversals = trajectory.traversals
        edge_chunks.append(np.array([t.edge_id for t in traversals], dtype=np.int64))
        entry_chunks.append(np.array([t.entry_time_s for t in traversals], dtype=float))
        cost_chunks.append(np.array([t.cost for t in traversals], dtype=float))
    arrays = {
        "traj_ids": np.array([t.trajectory_id for t in trajectories], dtype=np.int64),
        "traj_offsets": _offsets(len(t) for t in trajectories),
        "traj_edges": _concat(edge_chunks, np.int64),
        "traj_entry_s": _concat(entry_chunks, float),
        "traj_costs": _concat(cost_chunks, float),
    }
    meta = {"n_trajectories": len(trajectories)}
    return arrays, meta


def encode_cache_entries(
    entries: Sequence[tuple[tuple, CostEstimate]],
) -> tuple[dict[str, np.ndarray], dict]:
    """Warm result-cache entries: key columns plus one histogram triple each.

    Keys are the service's ``(path edge ids, interval index, method)``
    triples; of each :class:`~repro.core.estimator.CostEstimate` the
    serving-relevant parts are kept (histogram, departure time, entropy) --
    decompositions and timings are compute provenance, not serving state,
    and are dropped.
    """
    methods = sorted({key[2] for key, _ in entries})
    method_code = {method: code for code, method in enumerate(methods)}
    path_chunks, lows_chunks, highs_chunks, probs_chunks = [], [], [], []
    for (edge_ids, _interval, _method), estimate in entries:
        path_chunks.append(np.array(edge_ids, dtype=np.int64))
        lows, highs, probs = estimate.histogram.as_triple()
        lows_chunks.append(lows)
        highs_chunks.append(highs)
        probs_chunks.append(probs)
    arrays = {
        "cache_interval": np.array([key[1] for key, _ in entries], dtype=np.int64),
        "cache_method": np.array(
            [method_code[key[2]] for key, _ in entries], dtype=np.int64
        ),
        "cache_departure_s": np.array(
            [estimate.departure_time_s for _, estimate in entries], dtype=float
        ),
        "cache_entropy": np.array(
            [estimate.entropy for _, estimate in entries], dtype=float
        ),
        "cache_path_offsets": _offsets(len(key[0]) for key, _ in entries),
        "cache_path_edges": _concat(path_chunks, np.int64),
        "cache_hist_offsets": _offsets(
            estimate.histogram.n_buckets for _, estimate in entries
        ),
        "cache_lows": _concat(lows_chunks, float),
        "cache_highs": _concat(highs_chunks, float),
        "cache_probs": _concat(probs_chunks, float),
    }
    meta = {"n_entries": len(entries), "methods": methods}
    return arrays, meta


def _store_type_name(store: TrajectoryStore) -> str:
    """Record the live store's type; snapshots of a mutable store restore mutable."""
    if isinstance(store, (MutableTrajectoryStore, TrajectorySnapshot)):
        return "MutableTrajectoryStore"
    return "TrajectoryStore"


# --------------------------------------------------------------------- #
# Snapshot writer
# --------------------------------------------------------------------- #
def write_snapshot(
    directory,
    *,
    graph: HybridGraph | None = None,
    store: TrajectoryStore | None = None,
    cache_entries: Sequence[tuple[tuple, CostEstimate]] = (),
    epoch: int | None = None,
    service_info: dict | None = None,
    parameters: PersistParameters | None = None,
) -> dict:
    """Write a **full** snapshot directory; return its manifest.

    ``epoch`` tags the snapshot with the ingest epoch it captures; it
    defaults to the store's version (mutable stores) or trajectory count.
    Array blobs are written before the manifest, so an interrupted write
    never yields a loadable half-snapshot.
    """
    del parameters  # full writes have no knobs today; kept for symmetry
    directory = FSPath(directory)
    if graph is None and store is None:
        raise PersistError("a snapshot needs at least a hybrid graph or a store")

    arrays: dict[str, np.ndarray] = {}
    manifest: dict = {
        "format": fmt.FORMAT_NAME,
        "version": fmt.FORMAT_VERSION,
        "kind": fmt.KIND_FULL,
        "created_unix": time.time(),
    }

    if graph is not None:
        network_arrays, network_meta = encode_network(graph.network)
        variable_arrays, variable_meta = encode_variables(graph.variables)
        arrays.update(network_arrays)
        arrays.update(variable_arrays)
        arrays.update(encode_fallbacks(graph))
        manifest["network"] = network_meta
        manifest["graph"] = {
            **variable_meta,
            "n_fallbacks": len(graph.fallback_keys()),
            "array_memory_bytes": graph.array_memory_bytes(),
            "storage_size_scalars": graph.storage_size(),
        }
        manifest["estimator_parameters"] = asdict(graph.parameters)
    else:
        manifest["network"] = None
        manifest["graph"] = None
        manifest["estimator_parameters"] = None

    if store is not None:
        trajectory_arrays, store_meta = encode_trajectories(store.trajectories)
        arrays.update(trajectory_arrays)
        manifest["store"] = {"type": _store_type_name(store), **store_meta}
        if epoch is None:
            epoch = getattr(store, "version", None)
            if epoch is None:
                epoch = len(store)
    else:
        manifest["store"] = None
    manifest["epoch"] = int(epoch or 0)

    entries = list(cache_entries)
    cache_arrays, cache_meta = encode_cache_entries(entries)
    arrays.update(cache_arrays)
    manifest["cache"] = cache_meta
    manifest["service"] = service_info

    manifest["arrays"] = fmt.write_arrays(directory, arrays)
    fmt.write_manifest(directory, manifest)
    return manifest
