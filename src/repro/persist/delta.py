"""Delta snapshots: persist only what an ingest epoch changed.

A delta snapshot is written against a **base** snapshot (full or itself a
delta) and contains only

* the instantiated variables whose path intersects the epoch's
  **dirty-edge set** -- the same edge-level sets the ingest pipeline's
  appends emit to drive targeted cache invalidation;
* the **store segment**: trajectories appended since the base epoch;
* the current fallback-cache keys (tiny; fallbacks re-derive from edge
  attributes).

Appends can only *add* observations, so variables never disappear between
epochs -- replacing every dirty-path variable and appending the store
segment reconstructs the writer's exact state.  Restoring a delta resolves
the base chain recursively (:func:`~repro.persist.reader.restore_snapshot`)
and ages inherited warm-cache entries exactly like the live service's
targeted invalidation would.

:func:`compact_snapshot` folds a chain back into a single full snapshot;
the ingest pipeline does this automatically every
``PersistParameters.compact_every_deltas`` deltas so restore chains stay
bounded.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from pathlib import Path as FSPath
from typing import Iterable

import numpy as np

from ..config import PersistParameters
from ..core.hybrid_graph import HybridGraph
from ..exceptions import PersistError
from ..trajectories.store import TrajectoryStore
from . import format as fmt
from .writer import (
    _store_type_name,
    encode_fallbacks,
    encode_trajectories,
    encode_variables,
    write_snapshot,
)


def write_delta_snapshot(
    directory,
    *,
    base,
    graph: HybridGraph | None = None,
    store: TrajectoryStore | None = None,
    dirty_edges: Iterable[int] = (),
    epoch: int | None = None,
    service_info: dict | None = None,
    parameters: PersistParameters | None = None,
) -> dict:
    """Write a delta snapshot against ``base``; return its manifest.

    ``dirty_edges`` must cover every edge whose cost evidence changed
    since ``base`` was written (the union of the ingest pipeline's
    per-append dirty sets); only variables intersecting it are persisted.
    The base is referenced by *relative* path, so a snapshot tree moved as
    a unit keeps working.
    """
    del parameters
    directory = FSPath(directory)
    base = FSPath(base)
    if directory.resolve() == base.resolve():
        raise PersistError(
            f"refusing to write a delta snapshot into its own base directory "
            f"{directory}: that would overwrite the base manifest with a "
            "self-referential delta and destroy the snapshot"
        )
    base_manifest = fmt.read_manifest(base)
    dirty = sorted({int(edge) for edge in dirty_edges})
    dirty_set = frozenset(dirty)

    arrays: dict[str, np.ndarray] = {}
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict = {
        "format": fmt.FORMAT_NAME,
        "version": fmt.FORMAT_VERSION,
        "kind": fmt.KIND_DELTA,
        "created_unix": time.time(),
        "base": str(FSPath(
            # relative reference: resolve both ends so ".." components work
            # no matter how the caller spelled the paths
            _relative_to(base.resolve(), directory.resolve())
        )),
        "base_epoch": int(base_manifest.get("epoch", 0)),
        "dirty_edges": dirty,
    }

    if graph is not None:
        if base_manifest.get("graph") is None:
            raise PersistError(
                f"cannot write a graph delta against {base}: the base snapshot "
                "has no graph section"
            )
        touched = [
            variable
            for variable in graph.variables
            if not dirty_set.isdisjoint(variable.path.edge_ids)
        ]
        variable_arrays, variable_meta = encode_variables(touched)
        arrays.update(variable_arrays)
        arrays.update(encode_fallbacks(graph))
        manifest["graph"] = {
            **variable_meta,
            "n_fallbacks": len(graph.fallback_keys()),
        }
        manifest["estimator_parameters"] = asdict(graph.parameters)
    else:
        manifest["graph"] = None

    if store is not None:
        base_store = base_manifest.get("store")
        if base_store is None:
            raise PersistError(
                f"cannot write a store delta against {base}: the base snapshot "
                "has no store section"
            )
        segment_offset = int(base_store["n_trajectories"])
        all_trajectories = store.trajectories
        if len(all_trajectories) < segment_offset:
            raise PersistError(
                f"store shrank below the base snapshot ({len(all_trajectories)} < "
                f"{segment_offset} trajectories); appends-only deltas cannot "
                "represent removals -- write a full snapshot instead"
            )
        segment = all_trajectories[segment_offset:]
        segment_arrays, _segment_meta = encode_trajectories(segment)
        arrays.update(segment_arrays)
        manifest["store"] = {
            "type": _store_type_name(store),
            "n_trajectories": len(all_trajectories),
            "segment_offset": segment_offset,
            "segment_length": len(segment),
        }
        if epoch is None:
            epoch = getattr(store, "version", None)
            if epoch is None:
                epoch = len(all_trajectories)
    else:
        manifest["store"] = None
    manifest["epoch"] = int(epoch if epoch is not None else base_manifest.get("epoch", 0))

    # Deltas never carry cache entries: the base's entries for clean paths
    # stay valid and dirty-path entries are dropped on restore, mirroring
    # the live service's targeted invalidation.
    manifest["cache"] = {"n_entries": 0, "methods": []}
    manifest["service"] = (
        service_info if service_info is not None else base_manifest.get("service")
    )

    manifest["arrays"] = fmt.write_arrays(directory, arrays)
    fmt.write_manifest(directory, manifest)
    return manifest


def _relative_to(base: FSPath, directory: FSPath) -> str:
    import os

    return os.path.relpath(base, directory)


def compact_snapshot(directory, out_directory, parameters: PersistParameters | None = None) -> dict:
    """Fold a snapshot (typically a delta chain) into one full snapshot.

    Restores the chain and rewrites the resulting state as a full
    snapshot at ``out_directory``; returns the new manifest.  The restored
    warm-cache entries survive compaction (aged by every delta's dirty
    set, exactly as a live restore would age them), subject to the same
    ``parameters.include_caches`` / ``max_cache_entries`` policy a direct
    save applies.
    """
    from .reader import restore_snapshot

    parameters = parameters or PersistParameters()
    restored = restore_snapshot(directory, mmap=parameters.mmap)
    cache_entries = restored.cache_entries if parameters.include_caches else []
    if (
        parameters.max_cache_entries is not None
        and len(cache_entries) > parameters.max_cache_entries
    ):
        cache_entries = cache_entries[-parameters.max_cache_entries :]
    return write_snapshot(
        out_directory,
        graph=restored.graph,
        store=restored.store,
        cache_entries=cache_entries,
        epoch=restored.epoch,
        service_info=restored.manifest.get("service"),
        parameters=parameters,
    )
