"""The on-disk snapshot format: a manifest plus columnar array blobs.

A snapshot is a **directory** containing

* ``manifest.json`` -- format name + version, snapshot kind (``"full"`` or
  ``"delta"``), the ingest **epoch** (store version) the snapshot captures,
  the estimator/service configuration needed to boot without raw GPS data,
  section metadata (network, graph, store, cache), and the logical-name ->
  file map of every array blob;
* one ``<name>.npy`` file per logical array, written with plain
  :func:`numpy.save` so restores can map them with
  ``numpy.load(..., mmap_mode="r")`` (zero-copy: restored histograms are
  views into the snapshot file and worker processes restoring the same
  snapshot share the OS page cache).

The write protocol is crash-safe by ordering: array blobs are written
first, the manifest last (to a temporary file, then atomically renamed).
A directory without a readable manifest is never a valid snapshot, so a
crashed writer can not produce a half-snapshot that loads.

Versioning is strict: :func:`read_manifest` refuses snapshots whose
``version`` differs from :data:`FORMAT_VERSION` with an actionable error
instead of deserialising garbage.  Bump :data:`FORMAT_VERSION` whenever the
column layout changes incompatibly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path as FSPath
from typing import Mapping

import numpy as np

from ..exceptions import PersistError

#: Identifies the file family; never changes.
FORMAT_NAME = "repro-snapshot"

#: Incompatible-layout counter.  Readers only accept exactly this version.
FORMAT_VERSION = 1

#: The manifest file completing (and validating) a snapshot directory.
MANIFEST_FILENAME = "manifest.json"

#: Snapshot kinds.
KIND_FULL = "full"
KIND_DELTA = "delta"


def manifest_path(directory: str | os.PathLike) -> FSPath:
    return FSPath(directory) / MANIFEST_FILENAME


def write_arrays(directory: str | os.PathLike, arrays: Mapping[str, np.ndarray]) -> dict[str, str]:
    """Write each array as ``<name>.npy``; return the logical-name -> file map."""
    directory = FSPath(directory)
    directory.mkdir(parents=True, exist_ok=True)
    file_map: dict[str, str] = {}
    for name, array in arrays.items():
        filename = f"{name}.npy"
        np.save(directory / filename, np.ascontiguousarray(array))
        file_map[name] = filename
    return file_map


def write_manifest(directory: str | os.PathLike, manifest: dict) -> FSPath:
    """Atomically write the manifest (temp file + rename), completing the snapshot."""
    directory = FSPath(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / MANIFEST_FILENAME
    temporary = directory / (MANIFEST_FILENAME + ".tmp")
    temporary.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    os.replace(temporary, target)
    return target


def read_manifest(directory: str | os.PathLike) -> dict:
    """Load and validate a snapshot manifest.

    Raises :class:`~repro.exceptions.PersistError` when the directory is
    not a snapshot, the manifest is unreadable, or the format version does
    not match this build's :data:`FORMAT_VERSION`.
    """
    path = manifest_path(directory)
    if not path.is_file():
        raise PersistError(
            f"{os.fspath(directory)!r} is not a snapshot: missing {MANIFEST_FILENAME} "
            "(an interrupted writer never produces a manifest, so this directory "
            "holds no restorable state)"
        )
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise PersistError(f"cannot read snapshot manifest {path}: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise PersistError(
            f"{path} is not a {FORMAT_NAME} manifest "
            f"(format={manifest.get('format')!r} if it parsed at all)"
        )
    version = manifest.get("version")
    if version != FORMAT_VERSION:
        raise PersistError(
            f"snapshot {os.fspath(directory)} was written with format version "
            f"{version!r}, but this build of repro reads version {FORMAT_VERSION} "
            "only; regenerate the snapshot with this build (save_snapshot) or use "
            "a repro release matching the snapshot's version"
        )
    kind = manifest.get("kind")
    if kind not in (KIND_FULL, KIND_DELTA):
        raise PersistError(f"snapshot {os.fspath(directory)} has unknown kind {kind!r}")
    return manifest


def load_array(
    directory: str | os.PathLike,
    manifest: Mapping,
    name: str,
    mmap: bool = True,
) -> np.ndarray:
    """Load one logical array of a snapshot, memory-mapped when requested."""
    file_map = manifest.get("arrays", {})
    filename = file_map.get(name)
    if filename is None:
        raise PersistError(
            f"snapshot {os.fspath(directory)} has no array {name!r} "
            f"(present: {sorted(file_map)})"
        )
    path = FSPath(directory) / filename
    try:
        if mmap:
            return np.load(path, mmap_mode="r")
        return np.load(path)
    except FileNotFoundError as error:
        raise PersistError(f"snapshot array file missing: {path}") from error
    except ValueError:
        # Some numpy builds refuse to map unusual (e.g. zero-length)
        # payloads; an eager load is always a correct fallback.
        return np.load(path)


def snapshot_payload_bytes(directory: str | os.PathLike, prefix: str | None = None) -> int:
    """Total on-disk bytes of a snapshot's array blobs.

    With ``prefix`` given, only logical arrays whose name starts with it
    are counted (e.g. ``"uni_"`` + ``"multi_"`` for the variable payload).
    """
    manifest = read_manifest(directory)
    directory = FSPath(directory)
    total = 0
    for name, filename in manifest.get("arrays", {}).items():
        if prefix is not None and not name.startswith(prefix):
            continue
        total += (directory / filename).stat().st_size
    return total
