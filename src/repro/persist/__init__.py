"""Snapshot persistence: columnar save/restore of the hybrid graph and stores.

The paper's weight function ``W_P`` is expensive to instantiate (per-path
cross-validated histograms over millions of observations) but cheap to
store -- exactly the trade-off Figure 12 measures.  This subsystem makes
the instantiated state durable and makes process boot *warm*:

* a **versioned columnar format** (:mod:`repro.persist.format`): one
  ``manifest.json`` plus per-array ``.npy`` blobs, restored zero-copy via
  ``numpy.load(..., mmap_mode="r")``;
* **full snapshots** (:func:`write_snapshot` / :func:`restore_snapshot`)
  round-tripping the hybrid graph (variables, ranks, intervals, fallback
  cache), the trajectory stores, and the service's warm estimate cache
  bit-exactly;
* **epoch-tagged delta snapshots** (:func:`write_delta_snapshot`) that
  reuse the ingest pipeline's dirty-edge sets to persist only changed
  variables and appended store segments, with
  :func:`compact_snapshot` folding chains back into full snapshots;
* **multi-process warm boot**: N workers restoring the same snapshot share
  the OS page cache through the memory maps
  (``examples/snapshot_serving.py``).

The serving-layer entry points are
:meth:`repro.service.CostEstimationService.save_snapshot` /
:meth:`~repro.service.CostEstimationService.from_snapshot` and
:meth:`repro.ingest.TrajectoryIngestPipeline.save_snapshot`.
"""

from .format import FORMAT_NAME, FORMAT_VERSION, MANIFEST_FILENAME, read_manifest
from .reader import RestoredSnapshot, restore_snapshot, snapshot_info
from .writer import write_snapshot
from .delta import compact_snapshot, write_delta_snapshot

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILENAME",
    "RestoredSnapshot",
    "compact_snapshot",
    "read_manifest",
    "restore_snapshot",
    "snapshot_info",
    "write_delta_snapshot",
    "write_snapshot",
]
