"""Operational control plane: admin HTTP transport, probes, SLOs, profiling.

This package turns the library + front-end into an *observable daemon*:

* :class:`AdminServer` -- a stdlib HTTP server beside the serving stack
  exposing ``/metrics`` (Prometheus), ``/stats``, ``/healthz``,
  ``/readyz``, ``/traces``, ``/slow-queries``, ``/alerts``, and
  ``/profile``;
* :class:`HealthMonitor` -- liveness vs readiness over the front-end,
  service, and ingest pipeline;
* :class:`SLOEngine` with :class:`LatencySLO` / :class:`AvailabilitySLO`
  / :class:`StalenessSLO` -- declarative objectives evaluated over
  sliding windows, emitting multi-window burn-rate :class:`Alert` s to
  pluggable sinks;
* :class:`SamplingProfiler` / :func:`profile_for` -- wall-clock
  thread-stack sampling grouped by component.

Everything reads bookkeeping the stack already maintains; nothing here
adds work to the request hot path.
"""

from .health import CheckResult, HealthMonitor, ReadinessReport
from .profiler import SamplingProfiler, profile_for
from .server import AdminServer
from .slo import (
    Alert,
    AlertSink,
    AvailabilitySLO,
    CallbackAlertSink,
    JsonLinesAlertSink,
    LatencySLO,
    LogAlertSink,
    SLO,
    SLOEngine,
    StalenessSLO,
)

__all__ = [
    "AdminServer",
    "Alert",
    "AlertSink",
    "AvailabilitySLO",
    "CallbackAlertSink",
    "CheckResult",
    "HealthMonitor",
    "JsonLinesAlertSink",
    "LatencySLO",
    "LogAlertSink",
    "ReadinessReport",
    "SLO",
    "SLOEngine",
    "SamplingProfiler",
    "StalenessSLO",
    "profile_for",
]
