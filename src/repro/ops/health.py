"""Liveness and readiness probes over the serving stack.

The two probes answer different operational questions and must not be
conflated:

* **liveness** (``/healthz``) -- "is the process worth keeping?"  It is
  true from construction until the process dies; an orchestrator
  restarts on liveness failure, so it must *not* flap during overload
  or drains.
* **readiness** (``/readyz``) -- "should traffic be routed here right
  now?"  It composes cheap checks over the live components: the
  front-end is started and not draining, admission queues have headroom,
  the service is warm (when required), and the ingest pipeline is not
  so far behind that served estimates would be stale.

Each check is evaluated independently and reported with its own detail,
so a failing probe says *why* -- the report is the JSON body of the
probe endpoint, not just its status code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import DEFAULT_OPS_PARAMETERS, OpsParameters
from ..frontend.requests import LANES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..frontend.frontend import ServingFrontend
    from ..ingest.pipeline import IngestPipeline
    from ..service.service import CostEstimationService


@dataclass(frozen=True)
class CheckResult:
    """One readiness check: its verdict plus the numbers behind it."""

    name: str
    ok: bool
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": dict(self.detail)}


@dataclass(frozen=True)
class ReadinessReport:
    """The readiness verdict: every check's result, ANDed into ``ready``."""

    ready: bool
    checks: tuple[CheckResult, ...]

    def failing(self) -> list[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> dict:
        return {
            "ready": self.ready,
            "checks": [check.to_dict() for check in self.checks],
        }


class HealthMonitor:
    """Evaluates liveness/readiness over a front-end, service, and ingest.

    Any component may be ``None`` -- its checks are simply skipped, so the
    monitor works for a bare service as well as the full stack.
    Thresholds come from :class:`~repro.config.OpsParameters`; a limit
    left ``None`` disables that check.
    """

    def __init__(
        self,
        frontend: "ServingFrontend | None" = None,
        service: "CostEstimationService | None" = None,
        ingest: "IngestPipeline | None" = None,
        parameters: OpsParameters | None = None,
    ) -> None:
        self.frontend = frontend
        self.service = service if service is not None else (
            frontend.service if frontend is not None else None
        )
        self.ingest = ingest
        self.parameters = parameters or DEFAULT_OPS_PARAMETERS
        self._born_at = time.perf_counter()
        self._warm_override = False

    @property
    def uptime_s(self) -> float:
        return time.perf_counter() - self._born_at

    def mark_warm(self) -> None:
        """Force the warm check to pass (deployments that boot cold and
        warm organically)."""
        self._warm_override = True

    # ------------------------------------------------------------------ #
    # Probes
    # ------------------------------------------------------------------ #
    def liveness(self) -> dict:
        """Always alive: the process answering at all is the signal."""
        return {"status": "ok", "uptime_s": round(self.uptime_s, 3)}

    def readiness(self) -> ReadinessReport:
        checks: list[CheckResult] = []
        if self.frontend is not None:
            checks.append(self._check_frontend_running())
            checks.append(self._check_not_draining())
            if self.frontend.running:
                checks.append(self._check_queue_headroom())
        if self.parameters.require_warm and self.service is not None:
            checks.append(self._check_warm())
        if self.ingest is not None:
            if self.parameters.max_ingest_backlog is not None:
                checks.append(self._check_ingest_backlog())
            if self.parameters.max_pending_dirty_edges is not None:
                checks.append(self._check_dirty_edges())
        return ReadinessReport(
            ready=all(check.ok for check in checks), checks=tuple(checks)
        )

    # ------------------------------------------------------------------ #
    # Individual checks
    # ------------------------------------------------------------------ #
    def _check_frontend_running(self) -> CheckResult:
        running = self.frontend.running
        return CheckResult("frontend_running", running, {"running": running})

    def _check_not_draining(self) -> CheckResult:
        draining = self.frontend.draining
        return CheckResult("not_draining", not draining, {"draining": draining})

    def _check_queue_headroom(self) -> CheckResult:
        capacity = self.frontend.parameters.queue_capacity
        limit = self.parameters.queue_saturation_fraction * capacity
        depths = {lane: self.frontend.queue_depth(lane) for lane in LANES}
        worst = max(depths.values())
        return CheckResult(
            "queue_headroom",
            worst < limit,
            {
                "depths": depths,
                "capacity_per_lane": capacity,
                "saturation_at": limit,
            },
        )

    def _check_warm(self) -> CheckResult:
        warmed = self._warm_override or self.service.warmed
        return CheckResult("warm", warmed, {"warmed": warmed})

    def _check_ingest_backlog(self) -> CheckResult:
        backlog = self.ingest.backlog
        limit = self.parameters.max_ingest_backlog
        return CheckResult(
            "ingest_backlog", backlog <= limit, {"backlog": backlog, "limit": limit}
        )

    def _check_dirty_edges(self) -> CheckResult:
        pending = self.ingest.pending_dirty_edges
        limit = self.parameters.max_pending_dirty_edges
        return CheckResult(
            "dirty_edges", pending <= limit, {"pending": pending, "limit": limit}
        )

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def register_metrics(self, registry) -> None:
        """Expose the probe verdicts as callback-backed gauges."""
        registry.gauge(
            "repro_ops_up",
            "Liveness: 1 while the process is serving the admin endpoints",
            callback=lambda: 1.0,
        )
        registry.gauge(
            "repro_ops_ready",
            "Readiness: 1 when every readiness check passes",
            callback=lambda: 1.0 if self.readiness().ready else 0.0,
        )
        registry.gauge(
            "repro_ops_uptime_seconds",
            "Seconds since the health monitor was constructed",
            callback=lambda: self.uptime_s,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        report = self.readiness()
        return f"HealthMonitor(ready={report.ready}, checks={len(report.checks)})"
