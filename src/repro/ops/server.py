"""The admin HTTP server: metrics, probes, traces, alerts, profiles.

A stdlib-only (:mod:`http.server`) control-plane transport mounted
*beside* a serving stack -- it never touches the request hot path, it
only reads the bookkeeping the stack already maintains:

================  ====================================================
``GET /``          endpoint index (JSON)
``GET /metrics``   Prometheus text exposition of the telemetry registry
``GET /stats``     full stats snapshot (JSON)
``GET /healthz``   liveness -- 200 for as long as the process serves
``GET /readyz``    readiness -- 200/503 plus the per-check report
``GET /traces``    newest sampled request traces (JSON; ``?n=``)
``GET /slow-queries``  worst-K traces by duration (JSON; ``?n=``)
``GET /alerts``    SLO burn state + alert history (JSON)
``GET /profile``   sampling profile; ``?seconds=N`` blocks that long
================  ====================================================

The server owns the rest of the control plane's lifecycle: starting it
starts the SLO engine's evaluation loop (when one is attached) and the
continuous profiler (when ``TelemetryParameters.continuous_profile_hz``
is set); stopping stops whatever it started.  ``port=0`` binds an
ephemeral port -- read :attr:`AdminServer.port` after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from ..config import DEFAULT_OPS_PARAMETERS, OpsParameters
from ..exceptions import OpsError
from .health import HealthMonitor
from .profiler import SamplingProfiler, profile_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..frontend.frontend import ServingFrontend
    from ..ingest.pipeline import IngestPipeline
    from ..telemetry.hub import Telemetry
    from .slo import SLOEngine

#: text/plain content type Prometheus scrapers expect.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_CONTENT_TYPE = "application/json; charset=utf-8"

_ENDPOINTS = (
    "/", "/metrics", "/stats", "/healthz", "/readyz",
    "/traces", "/slow-queries", "/alerts", "/profile",
)


class AdminServer:
    """Mounts the ops endpoints over a serving stack on a background thread.

    Every component is optional: endpoints whose backing component is
    absent answer 404 with a JSON explanation, so a bare-telemetry
    deployment still gets ``/metrics`` and the probes.
    """

    def __init__(
        self,
        frontend: "ServingFrontend | None" = None,
        telemetry: "Telemetry | None" = None,
        ingest: "IngestPipeline | None" = None,
        health: HealthMonitor | None = None,
        slo_engine: "SLOEngine | None" = None,
        parameters: OpsParameters | None = None,
    ) -> None:
        self.parameters = parameters or DEFAULT_OPS_PARAMETERS
        self.frontend = frontend
        if telemetry is None and frontend is not None:
            telemetry = frontend.telemetry
        self.telemetry = telemetry
        self.ingest = ingest
        self.health = health or HealthMonitor(
            frontend=frontend, ingest=ingest, parameters=self.parameters
        )
        self.slo_engine = slo_engine
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_engine = False
        self._continuous: SamplingProfiler | None = None
        self._requests_lock = threading.Lock()
        self._requests: dict[str, int] = {}
        if self.telemetry is not None:
            self.health.register_metrics(self.telemetry.registry)
            if self.slo_engine is not None:
                self.slo_engine.register_metrics(self.telemetry.registry)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "AdminServer":
        if self._httpd is not None:
            raise OpsError("admin server already started")
        handler = _build_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.parameters.host, self.parameters.port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="admin-http", daemon=True
        )
        self._thread.start()
        if self.slo_engine is not None and not self.slo_engine.running:
            self.slo_engine.start(self.parameters.slo_evaluation_period_s)
            self._started_engine = True
        hz = (
            self.telemetry.parameters.continuous_profile_hz
            if self.telemetry is not None
            else 0.0
        )
        if hz > 0:
            self._continuous = SamplingProfiler(hz=hz).start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._httpd = None
        self._thread = None
        if self._started_engine and self.slo_engine is not None:
            self.slo_engine.stop()
            self._started_engine = False
        if self._continuous is not None:
            self._continuous.stop()
            self._continuous = None

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._httpd is None:
            raise OpsError("admin server is not started")
        return self._httpd.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.parameters.host}:{self.port}{path}"

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def request_counts(self) -> dict[str, int]:
        """Requests served per endpoint path (admin traffic, not queries)."""
        with self._requests_lock:
            return dict(self._requests)

    def _count(self, path: str) -> None:
        with self._requests_lock:
            self._requests[path] = self._requests.get(path, 0) + 1

    # ------------------------------------------------------------------ #
    # Endpoint bodies (return (status, content_type, body bytes))
    # ------------------------------------------------------------------ #
    def _json(self, payload, status: int = 200) -> tuple[int, str, bytes]:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        return status, _JSON_CONTENT_TYPE, body

    def _handle(self, path: str, query: dict) -> tuple[int, str, bytes]:
        if path == "/":
            return self._json({
                "endpoints": list(_ENDPOINTS),
                "requests": self.request_counts(),
            })
        if path == "/metrics":
            if self.telemetry is None:
                return self._json({"error": "no telemetry attached"}, 404)
            text = self.telemetry.render_prometheus()
            return 200, _PROMETHEUS_CONTENT_TYPE, text.encode("utf-8")
        if path == "/stats":
            if self.frontend is not None:
                return self._json(self.frontend.stats_snapshot())
            if self.telemetry is not None:
                return self._json(self.telemetry.snapshot())
            return self._json({"error": "no front-end or telemetry attached"}, 404)
        if path == "/healthz":
            return self._json(self.health.liveness())
        if path == "/readyz":
            report = self.health.readiness()
            return self._json(report.to_dict(), 200 if report.ready else 503)
        if path == "/traces":
            if self.telemetry is None:
                return self._json({"error": "no telemetry attached"}, 404)
            n = _int_param(query, "n")
            return self._json({"traces": self.telemetry.recent_traces(n)})
        if path == "/slow-queries":
            if self.telemetry is None:
                return self._json({"error": "no telemetry attached"}, 404)
            n = _int_param(query, "n")
            return self._json({"slow_queries": self.telemetry.slow_queries(n)})
        if path == "/alerts":
            if self.slo_engine is None:
                return self._json({"error": "no SLO engine attached"}, 404)
            return self._json({
                **self.slo_engine.snapshot(),
                "alerts": [a.to_dict() for a in self.slo_engine.alerts()],
            })
        if path == "/profile":
            return self._profile(query)
        return self._json({"error": f"unknown path {path!r}"}, 404)

    def _profile(self, query: dict) -> tuple[int, str, bytes]:
        params = self.parameters
        seconds = _float_param(query, "seconds")
        top_n = _int_param(query, "top") or 10
        if seconds is None and self._continuous is not None:
            # No explicit duration and an always-on profiler: report its
            # aggregate so far instead of blocking the caller.
            return self._json({
                "mode": "continuous",
                **self._continuous.report(top_n=top_n),
            })
        seconds = params.profile_default_seconds if seconds is None else seconds
        if seconds <= 0:
            return self._json({"error": "seconds must be positive"}, 400)
        seconds = min(seconds, params.profile_max_seconds)
        report = profile_for(seconds, hz=params.profile_hz, top_n=top_n)
        return self._json({"mode": "on-demand", **report})

    def __repr__(self) -> str:  # pragma: no cover - trivial
        where = self.url() if self.running else "stopped"
        return f"AdminServer({where})"


def _int_param(query: dict, name: str) -> int | None:
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        return None


def _float_param(query: dict, name: str) -> float | None:
    values = query.get(name)
    if not values:
        return None
    try:
        return float(values[0])
    except ValueError:
        return None


def _build_handler(server: AdminServer) -> type[BaseHTTPRequestHandler]:
    """A handler class bound to one :class:`AdminServer` via closure."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            split = urlsplit(self.path)
            path = split.path.rstrip("/") or "/"
            query = parse_qs(split.query)
            try:
                status, content_type, body = server._handle(path, query)
            except Exception as exc:  # endpoint bugs answer 500, not EOF
                status, content_type, body = server._json(
                    {"error": f"{type(exc).__name__}: {exc}"}, 500
                )
            server._count(path)
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # admin chatter stays out of stderr; request_counts() has totals

    return Handler
