"""Sampling wall-clock profiler over ``sys._current_frames``.

The serving stack is thread-based (front-end workers, ingest workers,
coalescer, SLO evaluator), so a wall-clock *sampling* profiler answers
"where do threads actually spend their time" without the 2-5x slowdown
of ``sys.setprofile`` tracing: a daemon thread wakes at a low rate
(default ~97 Hz -- prime, so it doesn't phase-lock with periodic work),
snapshots every thread's top frame via ``sys._current_frames()``, and
charges one sample of *self time* to that frame's ``file:line:function``.

Samples are grouped by *component*: the owning thread's name with any
trailing ``-<digits>`` stripped, so ``frontend-worker-0`` and
``frontend-worker-3`` aggregate under ``frontend-worker``.  The report
is a flat top-N per component -- the 20 lines an operator actually reads
-- rather than a full call-graph.

Two modes:

* on-demand -- :func:`profile_for` blocks for N seconds and returns a
  report (the ``/profile?seconds=N`` admin endpoint);
* continuous -- :meth:`SamplingProfiler.start` keeps a low-Hz sampler
  running for the life of the process; :meth:`SamplingProfiler.report`
  reads the aggregate so far without stopping it.
"""

from __future__ import annotations

import sys
import threading
import time

from ..exceptions import OpsError

def _component_of(thread_name: str) -> str:
    """The thread's component: its name with any trailing ``-<digits>``
    stripped, so pool siblings ("ingest-worker-2") aggregate together."""
    stem, dash, suffix = thread_name.rpartition("-")
    if dash and suffix.isdigit():
        return stem
    return thread_name


def _frame_key(frame) -> str:
    filename = frame.f_code.co_filename.replace("\\", "/")
    parts = filename.rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{short}:{frame.f_lineno}:{frame.f_code.co_name}"


class SamplingProfiler:
    """Aggregates thread-stack samples into per-component self-time counts.

    ``hz`` is the sampling rate; the profiler's own thread is excluded
    from every sample.  All mutation happens on the sampler thread, so
    readers only need the snapshot lock around :meth:`report`.
    """

    def __init__(self, hz: float = 97.0) -> None:
        if hz <= 0 or hz > 1000:
            raise OpsError(f"profiler hz must be in (0, 1000], got {hz}")
        self.hz = hz
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # component -> frame key -> sample count
        self._samples: dict[str, dict[str, int]] = {}
        self._total_samples = 0
        self._started_at = 0.0
        self._elapsed_s = 0.0

    @property
    def running(self) -> bool:
        return self._thread is not None

    def _take_sample(self, own_ident: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        with self._lock:
            self._total_samples += 1
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                component = _component_of(names.get(ident, f"thread-{ident}"))
                per_frame = self._samples.setdefault(component, {})
                key = _frame_key(frame)
                per_frame[key] = per_frame.get(key, 0) + 1

    def _run(self) -> None:
        period = 1.0 / self.hz
        own_ident = threading.get_ident()
        next_at = time.perf_counter()
        while not self._stop.is_set():
            self._take_sample(own_ident)
            next_at += period
            delay = next_at - time.perf_counter()
            if delay <= 0:
                # Fell behind (GIL contention, suspended VM): resynchronize
                # instead of bursting to catch up.
                next_at = time.perf_counter()
                continue
            if self._stop.wait(delay):
                break

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise OpsError("profiler already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._elapsed_s += time.perf_counter() - self._started_at

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._total_samples = 0
        self._elapsed_s = 0.0
        if self._thread is not None:
            self._started_at = time.perf_counter()

    @property
    def total_samples(self) -> int:
        with self._lock:
            return self._total_samples

    def report(self, top_n: int = 10) -> dict:
        """Flat self-time report, JSON-ready: top-N frames per component.

        Each frame entry carries its raw sample count, estimated seconds
        (``samples / hz``), and its share of that component's samples.
        """
        if top_n < 1:
            raise OpsError(f"top_n must be >= 1, got {top_n}")
        elapsed = self._elapsed_s
        if self._thread is not None:
            elapsed += time.perf_counter() - self._started_at
        with self._lock:
            total = self._total_samples
            snapshot = {
                component: dict(per_frame)
                for component, per_frame in self._samples.items()
            }
        components = {}
        for component in sorted(
            snapshot, key=lambda c: -sum(snapshot[c].values())
        ):
            per_frame = snapshot[component]
            comp_total = sum(per_frame.values())
            top = [
                {
                    "frame": key,
                    "samples": count,
                    "seconds": round(count / self.hz, 6),
                    "fraction": round(count / comp_total, 6),
                }
                for key, count in sorted(
                    per_frame.items(), key=lambda kv: (-kv[1], kv[0])
                )[:top_n]
            ]
            components[component] = {"samples": comp_total, "top": top}
        return {
            "hz": self.hz,
            "duration_s": round(elapsed, 6),
            "samples": total,
            "components": components,
        }

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "running" if self.running else "stopped"
        return f"SamplingProfiler({self.hz}Hz, {state}, {self.total_samples} samples)"


def profile_for(seconds: float, hz: float = 97.0, top_n: int = 10) -> dict:
    """Block for ``seconds``, sampling all threads; return the flat report.

    The blocking primitive behind the admin server's ``/profile``
    endpoint (each request gets its own short-lived profiler, so
    concurrent requests don't share state).
    """
    if seconds <= 0:
        raise OpsError(f"profile duration must be positive, got {seconds}")
    profiler = SamplingProfiler(hz=hz)
    with profiler:
        time.sleep(seconds)
    return profiler.report(top_n=top_n)
