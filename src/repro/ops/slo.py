"""Declarative SLOs with multi-window burn-rate alerting.

An SLO here is a *good-event fraction* target (99% of requests under
250 ms, 99.9% of submissions answered ok, backlog under its limit 99%
of the time).  The complement of the objective is the **error budget**;
the **burn rate** is how many times faster than budget the service is
currently consuming it:

    burn = error_fraction / (1 - objective)

Alerting on burn rate over *two* windows at once -- a fast window with a
high threshold AND a slow window with a lower one -- is the standard SRE
construction: the fast window makes detection quick, the slow window
makes it *material* (one slow batch cannot page), and an alert resolves
as soon as the fast window is clean again, so recovery is visible in
seconds rather than after the slow window ages out.

:class:`SLOEngine` owns the evaluation loop: each tick it samples every
SLO's sliding windows (:mod:`repro.telemetry.windows`) from the stack's
existing bookkeeping, computes both burns, walks the firing state
machine, and emits :class:`Alert` transitions to pluggable
:class:`AlertSink` s.  Windows with no data report ``None`` and never
fire -- "no traffic" is not an outage.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..config import DEFAULT_SLO_PARAMETERS, SLOParameters
from ..exceptions import OpsError
from ..telemetry.metrics import LatencyHistogram
from ..telemetry.windows import CounterWindow, GaugeWindow, HistogramWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..frontend.frontend import ServingFrontend
    from ..ingest.pipeline import IngestPipeline
    from ..telemetry.metrics import MetricsRegistry

logger = logging.getLogger(__name__)


# --------------------------------------------------------------------- #
# Alerts and sinks
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Alert:
    """One burn-rate state transition (``firing`` or ``resolved``)."""

    slo: str
    state: str  # "firing" | "resolved"
    fast_burn: float | None
    slow_burn: float | None
    fast_window_s: float
    slow_window_s: float
    at_s: float  # engine-clock seconds (monotonic origin)
    wall_ts: float  # unix seconds, for humans and log lines
    message: str

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "state": self.state,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "at_s": round(self.at_s, 6),
            "wall_ts": self.wall_ts,
            "message": self.message,
        }


class AlertSink:
    """Receives alert transitions; subclasses decide where they go."""

    def emit(self, alert: Alert) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class LogAlertSink(AlertSink):
    """Alerts to a :mod:`logging` logger (warning on fire, info on resolve)."""

    def __init__(self, target: logging.Logger | None = None) -> None:
        self._logger = target or logger

    def emit(self, alert: Alert) -> None:
        level = logging.WARNING if alert.state == "firing" else logging.INFO
        self._logger.log(level, "slo %s %s: %s", alert.slo, alert.state, alert.message)


class JsonLinesAlertSink(AlertSink):
    """Appends each alert as one JSON line (audit trail that survives)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def emit(self, alert: Alert) -> None:
        line = json.dumps(alert.to_dict(), sort_keys=True)
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")


class CallbackAlertSink(AlertSink):
    """Hands each alert to a callable (tests, custom pagers)."""

    def __init__(self, fn: Callable[[Alert], None]) -> None:
        self._fn = fn

    def emit(self, alert: Alert) -> None:
        self._fn(alert)


# --------------------------------------------------------------------- #
# SLO definitions
# --------------------------------------------------------------------- #
class SLO:
    """Base: a named objective that can sample itself and report windowed
    error fractions.  Subclasses wire a sliding-window reducer to one
    signal; the engine owns burn math and alerting."""

    def __init__(self, name: str, objective: float) -> None:
        if not 0.0 < objective < 1.0:
            raise OpsError(f"SLO objective must be in (0, 1), got {objective}")
        self.name = name
        self.objective = objective

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def sample(self, now: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def error_fraction(self, window_s: float, now: float) -> float | None:
        raise NotImplementedError  # pragma: no cover - interface

    def burn_rate(self, window_s: float, now: float) -> float | None:
        fraction = self.error_fraction(window_s, now)
        if fraction is None:
            return None
        return fraction / self.error_budget

    def describe(self) -> dict:
        return {"name": self.name, "objective": self.objective}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name!r}, objective={self.objective})"


class LatencySLO(SLO):
    """Fraction of requests at most ``threshold_s`` (from a latency
    histogram -- typically one front-end lane's end-to-end histogram)."""

    def __init__(
        self,
        name: str,
        histogram: LatencyHistogram,
        threshold_s: float,
        objective: float,
        horizon_s: float,
    ) -> None:
        super().__init__(name, objective)
        if threshold_s <= 0:
            raise OpsError(f"latency threshold must be positive, got {threshold_s}")
        self.threshold_s = threshold_s
        self._window = HistogramWindow(histogram, horizon_s)

    def sample(self, now: float) -> None:
        self._window.sample(now)

    def error_fraction(self, window_s: float, now: float) -> float | None:
        good = self._window.fraction_at_most(self.threshold_s, window_s, now)
        return None if good is None else 1.0 - good

    def describe(self) -> dict:
        return {**super().describe(), "threshold_s": self.threshold_s}


class AvailabilitySLO(SLO):
    """Fraction of submitted requests answered ok.

    Reads two cumulative callables -- total submissions and bad outcomes
    (shed + errors) -- and differences both over the window.  With the
    front-end convenience constructor, "bad" is
    ``rejected + dropped + timeouts + errors`` from the stats the
    front-end already keeps.
    """

    def __init__(
        self,
        name: str,
        total_fn: Callable[[], float],
        bad_fn: Callable[[], float],
        objective: float,
        horizon_s: float,
    ) -> None:
        super().__init__(name, objective)
        self._total = CounterWindow(total_fn, horizon_s)
        self._bad = CounterWindow(bad_fn, horizon_s)

    @classmethod
    def for_frontend(
        cls,
        frontend: "ServingFrontend",
        objective: float,
        horizon_s: float,
        name: str = "availability",
    ) -> "AvailabilitySLO":
        def total() -> float:
            return frontend.stats().submitted

        def bad() -> float:
            stats = frontend.stats()
            return stats.shed + stats.errors

        return cls(name, total, bad, objective, horizon_s)

    def sample(self, now: float) -> None:
        self._total.sample(now)
        self._bad.sample(now)

    def error_fraction(self, window_s: float, now: float) -> float | None:
        total = self._total.delta(window_s, now)
        if total is None or total <= 0:
            return None
        bad = self._bad.delta(window_s, now)
        if bad is None:
            return None
        return min(bad / total, 1.0)


class StalenessSLO(SLO):
    """Fraction of level readings at or under a limit (ingest freshness).

    Unlike the event SLOs this one watches a *condition*: each tick reads
    a level (the ingest backlog, pending dirty edges) and the error
    fraction is the share of recent readings above the limit.
    """

    def __init__(
        self,
        name: str,
        read_fn: Callable[[], float],
        limit: float,
        objective: float,
        horizon_s: float,
    ) -> None:
        super().__init__(name, objective)
        if limit < 0:
            raise OpsError(f"staleness limit must be >= 0, got {limit}")
        self.limit = limit
        self._window = GaugeWindow(read_fn, horizon_s)

    @classmethod
    def for_ingest(
        cls,
        ingest: "IngestPipeline",
        limit: float,
        objective: float,
        horizon_s: float,
        name: str = "staleness",
    ) -> "StalenessSLO":
        return cls(name, lambda: ingest.backlog, limit, objective, horizon_s)

    def sample(self, now: float) -> None:
        self._window.sample(now)

    def error_fraction(self, window_s: float, now: float) -> float | None:
        return self._window.fraction_above(self.limit, window_s, now)

    def describe(self) -> dict:
        return {**super().describe(), "limit": self.limit}


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #
class _SLOState:
    """Per-SLO mutable evaluation state (engine lock guards it)."""

    __slots__ = ("firing", "fast_burn", "slow_burn")

    def __init__(self) -> None:
        self.firing = False
        self.fast_burn: float | None = None
        self.slow_burn: float | None = None


class SLOEngine:
    """Samples registered SLOs on a cadence and emits burn-rate alerts.

    Drive it either manually (:meth:`evaluate` with an explicit ``now``;
    what the tests do) or as a background thread (:meth:`start` /
    :meth:`stop`; what the admin server does).  Alert transitions go to
    every sink and into a bounded history (the ``/alerts`` endpoint).
    """

    def __init__(
        self,
        parameters: SLOParameters | None = None,
        sinks: list[AlertSink] | None = None,
        history_capacity: int = 256,
    ) -> None:
        if history_capacity < 1:
            raise OpsError(f"history_capacity must be >= 1, got {history_capacity}")
        self.parameters = parameters or DEFAULT_SLO_PARAMETERS
        self.sinks: list[AlertSink] = list(sinks) if sinks else [LogAlertSink()]
        self._slos: list[SLO] = []
        self._states: dict[str, _SLOState] = {}
        self._history: list[Alert] = []
        self._history_capacity = history_capacity
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._evaluations = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def for_stack(
        cls,
        frontend: "ServingFrontend | None" = None,
        ingest: "IngestPipeline | None" = None,
        parameters: SLOParameters | None = None,
        sinks: list[AlertSink] | None = None,
    ) -> "SLOEngine":
        """An engine pre-loaded with the SLOs the parameters enable.

        Latency SLOs (one per front-end lane with a histogram -- present
        once telemetry is attached), the availability SLO over the
        front-end's shed/error counters, and the staleness SLO over the
        ingest backlog.  Objectives left ``None`` in the parameters are
        skipped, as are objectives whose component is absent.
        """
        engine = cls(parameters=parameters, sinks=sinks)
        params = engine.parameters
        horizon = params.slow_window_s
        if frontend is not None and params.latency_threshold_s is not None:
            for lane, histogram in sorted(frontend.latency_histograms.items()):
                engine.add(
                    LatencySLO(
                        f"latency-{lane}",
                        histogram,
                        params.latency_threshold_s,
                        params.latency_objective,
                        horizon,
                    )
                )
        if frontend is not None and params.availability_objective is not None:
            engine.add(
                AvailabilitySLO.for_frontend(
                    frontend, params.availability_objective, horizon
                )
            )
        if ingest is not None and params.staleness_backlog_limit is not None:
            engine.add(
                StalenessSLO.for_ingest(
                    ingest,
                    params.staleness_backlog_limit,
                    params.staleness_objective,
                    horizon,
                )
            )
        return engine

    def add(self, slo: SLO) -> SLO:
        with self._lock:
            if any(existing.name == slo.name for existing in self._slos):
                raise OpsError(f"an SLO named {slo.name!r} is already registered")
            self._slos.append(slo)
            self._states[slo.name] = _SLOState()
        return slo

    @property
    def slos(self) -> list[SLO]:
        with self._lock:
            return list(self._slos)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, now: float | None = None) -> list[Alert]:
        """One tick: sample every SLO, update burns, emit transitions.

        ``now`` defaults to ``time.monotonic()``; tests inject a
        synthetic clock.  Returns the alerts emitted by this tick.
        """
        if now is None:
            now = time.monotonic()
        params = self.parameters
        emitted: list[Alert] = []
        with self._lock:
            slos = list(self._slos)
        for slo in slos:
            slo.sample(now)
            fast = slo.burn_rate(params.fast_window_s, now)
            slow = slo.burn_rate(params.slow_window_s, now)
            with self._lock:
                state = self._states[slo.name]
                state.fast_burn = fast
                state.slow_burn = slow
                alert = self._transition(slo, state, fast, slow, now)
                if alert is not None:
                    self._history.append(alert)
                    del self._history[: -self._history_capacity]
                    emitted.append(alert)
        with self._lock:
            self._evaluations += 1
        for alert in emitted:
            for sink in self.sinks:
                try:
                    sink.emit(alert)
                except Exception:  # pragma: no cover - sink bugs must not kill the loop
                    logger.exception("alert sink %r failed", sink)
        return emitted

    def _transition(
        self,
        slo: SLO,
        state: _SLOState,
        fast: float | None,
        slow: float | None,
        now: float,
    ) -> Alert | None:
        params = self.parameters
        if not state.firing:
            if (
                fast is not None
                and slow is not None
                and fast >= params.fast_burn_threshold
                and slow >= params.slow_burn_threshold
            ):
                state.firing = True
                return self._alert(
                    slo,
                    "firing",
                    fast,
                    slow,
                    now,
                    f"burn {fast:.1f}x/{params.fast_window_s:.0f}s and "
                    f"{slow:.1f}x/{params.slow_window_s:.0f}s exceed "
                    f"{params.fast_burn_threshold}x/{params.slow_burn_threshold}x "
                    f"(objective {slo.objective})",
                )
            return None
        # Firing: resolve once the fast window is clean (an empty fast
        # window -- no traffic -- also resolves: nothing is burning).
        if fast is None or fast < params.fast_burn_threshold:
            state.firing = False
            return self._alert(
                slo,
                "resolved",
                fast,
                slow,
                now,
                f"fast-window burn back under {params.fast_burn_threshold}x",
            )
        return None

    def _alert(
        self,
        slo: SLO,
        state: str,
        fast: float | None,
        slow: float | None,
        now: float,
        message: str,
    ) -> Alert:
        params = self.parameters
        return Alert(
            slo=slo.name,
            state=state,
            fast_burn=fast,
            slow_burn=slow,
            fast_window_s=params.fast_window_s,
            slow_window_s=params.slow_window_s,
            at_s=now,
            wall_ts=time.time(),
            message=message,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def alerts(self, n: int | None = None) -> list[Alert]:
        """Alert history, newest first (up to ``n``)."""
        with self._lock:
            history = list(reversed(self._history))
        return history if n is None else history[:n]

    def firing(self) -> list[str]:
        """Names of SLOs currently in the firing state."""
        with self._lock:
            return [name for name, state in self._states.items() if state.firing]

    @property
    def evaluations(self) -> int:
        with self._lock:
            return self._evaluations

    def snapshot(self) -> dict:
        """JSON-ready: every SLO's description, burns, and firing state."""
        with self._lock:
            slos = list(self._slos)
            states = {name: state for name, state in self._states.items()}
        return {
            "slos": [
                {
                    **slo.describe(),
                    "fast_burn": states[slo.name].fast_burn,
                    "slow_burn": states[slo.name].slow_burn,
                    "firing": states[slo.name].firing,
                }
                for slo in slos
            ],
            "firing": sorted(
                name for name, state in states.items() if state.firing
            ),
            "evaluations": self.evaluations,
        }

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Burns and firing states as gauges (scrapable alongside the stack)."""
        for slo in self.slos:
            for window, attr in (("fast", "fast_burn"), ("slow", "slow_burn")):
                registry.gauge(
                    "repro_slo_burn_rate",
                    "Error-budget burn rate over the labeled window",
                    labels={"slo": slo.name, "window": window},
                    callback=self._burn_reader(slo.name, attr),
                )
            registry.gauge(
                "repro_slo_alert_firing",
                "1 while the labeled SLO's burn-rate alert is firing",
                labels={"slo": slo.name},
                callback=self._firing_reader(slo.name),
            )

    def _burn_reader(self, name: str, attr: str) -> Callable[[], float]:
        def read() -> float:
            with self._lock:
                value = getattr(self._states[name], attr)
            return float("nan") if value is None else float(value)

        return read

    def _firing_reader(self, name: str) -> Callable[[], float]:
        def read() -> float:
            with self._lock:
                return 1.0 if self._states[name].firing else 0.0

        return read

    # ------------------------------------------------------------------ #
    # Background loop
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self, period_s: float = 1.0) -> "SLOEngine":
        if period_s <= 0:
            raise OpsError(f"evaluation period must be positive, got {period_s}")
        if self._thread is not None:
            raise OpsError("SLO engine already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, args=(period_s,), name="slo-engine", daemon=True
        )
        self._thread.start()
        return self

    def _run(self, period_s: float) -> None:
        while not self._stop.wait(period_s):
            self.evaluate()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SLOEngine({len(self.slos)} slos, firing={self.firing()}, "
            f"evaluations={self.evaluations})"
        )
