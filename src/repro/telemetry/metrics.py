"""The process-wide metrics registry: counters, gauges, latency histograms.

Three metric kinds cover everything the serving stack reports:

* :class:`Counter` -- a monotonically increasing count of events (requests
  served, cache hits, trajectories appended);
* :class:`Gauge` -- a point-in-time level.  Gauges are usually
  *callback-backed*: the component keeps its own counter under its own
  lock (exactly as it did before telemetry existed) and the gauge reads it
  on collection, so instrumentation adds **zero** work to the hot path;
* :class:`LatencyHistogram` -- a streaming histogram over fixed log-spaced
  buckets.  ``observe`` computes the bucket index outside the lock and
  holds it only for a few integer increments, so recording a latency costs
  well under a microsecond.

A :class:`MetricsRegistry` names and owns metric *families*: the same
``(name, labels)`` pair always resolves to the same metric object
(get-or-create), and one name can fan out into several labeled series
(``repro_service_cache_hits{cache="result"}`` vs ``{cache="route"}``).
Naming follows the Prometheus conventions the exporter renders to:
``repro_<subsystem>_<what>[_total|_seconds]``.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import TelemetryError

#: Deferred histogram batches are folded into buckets once this many samples
#: are pending -- large enough that the numpy fold runs at C speed (tens of
#: nanoseconds per sample), small enough to bound the deferred memory.
_FOLD_THRESHOLD = 4096

#: Batches at or below this size are bucketed eagerly in pure Python:
#: numpy's fixed per-array costs (asarray, concatenate bookkeeping) exceed
#: a short bisect loop, and parking many tiny chunks would make the
#: eventual fold pay those fixed costs once *per chunk*.
EAGER_OBSERVE_MAX = 16

#: Label sets are stored as sorted ``(key, value)`` tuples so dict ordering
#: never makes two spellings of the same series distinct.
LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, str] | None) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class Counter:
    """A thread-safe, monotonically increasing event count."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0: counters only ever go up)."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease (inc({amount}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Counter({self.name}{dict(self.labels) or ''}={self.value})"


class Gauge:
    """A point-in-time level: callback-backed (preferred) or set explicitly.

    Callback-backed gauges are the registry's bridge to pre-existing
    bookkeeping: the owning component mutates its own counters exactly as
    before, and the gauge evaluates the callback only when a snapshot or
    exporter asks -- the serving hot path never touches the gauge at all.
    """

    __slots__ = ("name", "labels", "_lock", "_value", "_callback")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        callback: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise TelemetryError(f"gauge {self.name} is callback-backed; it cannot be set")
        with self._lock:
            self._value = value

    def set_callback(self, callback: Callable[[], float]) -> None:
        """(Re)bind the callback; the last binding wins (service rebase etc.)."""
        self._callback = callback

    @property
    def value(self) -> float:
        callback = self._callback
        if callback is not None:
            try:
                return float(callback())
            except Exception:
                # A dead callback (component torn down mid-collection) must
                # not take the whole snapshot down with it.
                return float("nan")
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Gauge({self.name}{dict(self.labels) or ''}={self.value})"


def default_latency_bounds(
    min_value: float = 1e-6,
    max_value: float = 64.0,
    buckets_per_decade: int = 5,
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds covering ``[min_value, max_value]``.

    The defaults span 1 microsecond to 64 seconds -- every latency the
    serving stack produces -- in under 40 buckets, so one histogram costs
    a few hundred bytes and an update is one integer increment.
    """
    if not 0 < min_value < max_value:
        raise TelemetryError(
            f"need 0 < min_value < max_value, got {min_value}..{max_value}"
        )
    if buckets_per_decade < 1:
        raise TelemetryError(f"buckets_per_decade must be >= 1, got {buckets_per_decade}")
    n = int(math.ceil(math.log10(max_value / min_value) * buckets_per_decade))
    ratio = 10.0 ** (1.0 / buckets_per_decade)
    bounds = [min_value * ratio**i for i in range(n + 1)]
    return tuple(bounds)


class LatencyHistogram:
    """A streaming histogram over fixed log-spaced buckets.

    ``observe`` is designed for hot paths: the bucket index is found with
    one bisect *outside* the lock, and the critical section is four scalar
    updates.  ``observe_batch`` is cheaper still for callers that already
    hold a batch of samples: the list is parked under the lock in O(1) and
    bucketed lazily -- with one vectorised numpy pass -- the next time a
    reader asks or the pending pool reaches ``_FOLD_THRESHOLD`` samples,
    so the serving thread pays nanoseconds per batch, not per sample.
    ``percentiles`` interpolates within the winning bucket, so
    estimates are exact to one bucket's relative width (~58% per bucket at
    the default 5 buckets/decade -- tight enough to tell a 1 ms p99 from a
    10 ms one, which is what an operator needs from a live endpoint; the
    load harness still reports exact percentiles from raw samples).
    """

    __slots__ = ("name", "labels", "_bounds", "_bounds_array", "_lock",
                 "_counts", "_overflow", "_count", "_sum", "_min", "_max",
                 "_pending", "_pending_n")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Sequence[float] | None = None,
    ) -> None:
        if bounds is None:
            bounds = default_latency_bounds()
        bounds = tuple(float(b) for b in bounds)
        if len(bounds) < 1 or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise TelemetryError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self._bounds = bounds
        self._bounds_array = np.asarray(bounds, dtype=np.float64)
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)
        self._overflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._pending: list[tuple[Sequence[float], float]] = []
        self._pending_n = 0

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        """Record one sample (negative values clamp into the first bucket)."""
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            else:
                self._overflow += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_batch(self, values: Sequence[float], offset: float = 0.0) -> None:
        """Record a batch of samples at O(1) hot-path cost.

        Batches longer than :data:`EAGER_OBSERVE_MAX` are parked as-is
        (list, tuple, or numpy array) and folded into the buckets lazily
        (one vectorised pass) when a reader next asks, so the caller pays
        one lock acquisition and *no allocation* per batch; small batches
        are bucketed immediately, where a short Python loop beats numpy's
        fixed costs.  ``offset`` is added to every value at fold time --
        a batch of queue waits plus one shared execution tail becomes one
        parked reference instead of a fresh array -- keeping the hot path
        free of memory traffic that would evict the caller's own working
        set.  The caller must not mutate ``values`` afterwards; pass a
        fresh sequence or one that is never written again.
        """
        n = len(values)
        if n == 0:
            return
        # ndarrays always park: iterating one yields numpy scalars, which
        # must not leak into the float bookkeeping (JSON export chokes).
        if n <= EAGER_OBSERVE_MAX and not isinstance(values, np.ndarray):
            bounds = self._bounds
            n_buckets = len(self._counts)
            with self._lock:
                for value in values:
                    value += offset
                    index = bisect.bisect_left(bounds, value)
                    if index < n_buckets:
                        self._counts[index] += 1
                    else:
                        self._overflow += 1
                    self._sum += value
                    if value < self._min:
                        self._min = value
                    if value > self._max:
                        self._max = value
                self._count += n
            return
        with self._lock:
            self._pending.append((values, offset))
            self._pending_n += n
            if self._pending_n >= _FOLD_THRESHOLD:
                self._fold_locked()

    def _fold_locked(self) -> None:
        """Bucket every pending batch (caller holds the lock).

        One preallocated buffer takes every chunk via slice assignment
        (the float unboxing runs at C speed, with no per-chunk
        intermediate array or concatenate copy), offsets are applied
        in place, and a single vectorised pass buckets the lot.
        """
        if not self._pending:
            return
        samples = np.empty(self._pending_n, dtype=np.float64)
        position = 0
        for chunk, offset in self._pending:
            end = position + len(chunk)
            samples[position:end] = chunk
            if offset != 0.0:
                samples[position:end] += offset
            position = end
        self._pending = []
        self._pending_n = 0
        indexes = np.searchsorted(self._bounds_array, samples, side="left")
        per_bucket = np.bincount(indexes, minlength=len(self._counts) + 1)
        counts = self._counts
        for index in np.flatnonzero(per_bucket[:-1]):
            counts[index] += int(per_bucket[index])
        self._overflow += int(per_bucket[-1])
        self._count += int(samples.size)
        self._sum += float(samples.sum())
        low = float(samples.min())
        high = float(samples.max())
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high

    @property
    def count(self) -> int:
        with self._lock:
            return self._count + self._pending_n

    @property
    def sum(self) -> float:
        with self._lock:
            self._fold_locked()
            return self._sum

    def percentiles(
        self, points: Iterable[float] = (50.0, 95.0, 99.0, 99.9)
    ) -> dict[str, float]:
        """Estimated named percentiles (``{"p50": ..., ...}``; ``{}`` when empty).

        Within the winning bucket the estimate interpolates linearly
        between the bucket's edges; the first bucket interpolates from 0
        and the overflow bucket reports the observed maximum (there is no
        upper edge to interpolate toward).  A single sample therefore
        reports its own bucket's range for every p, and ``p999`` on a
        short run degrades gracefully to the maximum observed bucket.
        """
        from ..frontend.stats import percentile_label

        with self._lock:
            self._fold_locked()
            total = self._count
            counts = list(self._counts)
            overflow = self._overflow
            observed_max = self._max
            observed_min = self._min
        if total == 0:
            return {}
        results: dict[str, float] = {}
        for point in points:
            if not 0.0 <= point <= 100.0:
                raise TelemetryError(f"percentile points must be in [0, 100], got {point}")
            rank = point / 100.0 * total
            cumulative = 0.0
            value = observed_max
            for index, count in enumerate(counts):
                if count == 0:
                    continue
                previous = cumulative
                cumulative += count
                if cumulative >= rank:
                    lower = self._bounds[index - 1] if index > 0 else 0.0
                    upper = self._bounds[index]
                    fraction = 0.5 if count == 0 else (max(rank, previous) - previous) / count
                    value = lower + (upper - lower) * fraction
                    # Never report outside what was actually observed.
                    value = min(max(value, observed_min), observed_max)
                    break
            else:
                if overflow:
                    value = observed_max
            results[percentile_label(point)] = float(value)
        return results

    def snapshot(self) -> dict:
        """A JSON-ready summary: count/sum/min/max, percentiles, busy buckets."""
        with self._lock:
            self._fold_locked()
            total = self._count
            counts = list(self._counts)
            overflow = self._overflow
            minimum = self._min
            maximum = self._max
            running_sum = self._sum
        busy = [
            [self._bounds[index], count]
            for index, count in enumerate(counts)
            if count
        ]
        if overflow:
            busy.append([math.inf, overflow])
        return {
            "count": total,
            "sum": running_sum,
            "min": minimum if total else None,
            "max": maximum if total else None,
            "mean": (running_sum / total) if total else None,
            "percentiles": self.percentiles(),
            "buckets": busy,
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, ``+Inf`` last."""
        with self._lock:
            self._fold_locked()
            counts = list(self._counts)
            overflow = self._overflow
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            pairs.append((bound, cumulative))
        pairs.append((math.inf, cumulative + overflow))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LatencyHistogram({self.name}, n={self.count})"


#: Metric kinds a registry can hold (the exporter's ``# TYPE`` line).
KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"


class _Family:
    """All series sharing one metric name: one kind, one help string."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.children: dict[LabelItems, Counter | Gauge | LatencyHistogram] = {}


class MetricsRegistry:
    """A thread-safe, name-keyed collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking twice
    for the same ``(name, labels)`` returns the same object, so components
    can idempotently register on construction and re-register after a
    restart.  Asking for an existing name with a different *kind* is a
    :class:`~repro.exceptions.TelemetryError` -- that is always a naming
    bug, never a legitimate series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Mapping[str, str] | None,
        factory,
    ):
        if not name:
            raise TelemetryError("metric name must be non-empty")
        items = _label_items(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise TelemetryError(
                    f"metric {name!r} is a {family.kind}, cannot re-register as a {kind}"
                )
            elif help and not family.help:
                family.help = help
            child = family.children.get(items)
            if child is None:
                child = factory(name, items)
                family.children[items] = child
            return child

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(name, KIND_COUNTER, help, labels, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        gauge = self._get_or_create(
            name, KIND_GAUGE, help, labels, lambda n, l: Gauge(n, l, callback=callback)
        )
        if callback is not None and gauge._callback is not callback:
            # Re-registration with a fresh callback rebinds the series to
            # the live component (e.g. a service rebuilt after rebase).
            gauge.set_callback(callback)
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        bounds: Sequence[float] | None = None,
    ) -> LatencyHistogram:
        return self._get_or_create(
            name,
            KIND_HISTOGRAM,
            help,
            labels,
            lambda n, l: LatencyHistogram(n, l, bounds=bounds),
        )

    def families(self) -> list[_Family]:
        """The registered families, name-sorted (a snapshot)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def __len__(self) -> int:
        with self._lock:
            return sum(len(f.children) for f in self._families.values())

    def snapshot(self) -> dict:
        """Every series' current value as one JSON-ready mapping.

        Counters and gauges render as plain numbers; histograms as their
        summary dict.  Labeled series are keyed
        ``name{key="value",...}`` -- the same spelling the Prometheus
        exporter uses, so the two views line up one-to-one.
        """
        result: dict[str, object] = {}
        for family in self.families():
            for items, metric in sorted(family.children.items()):
                key = family.name
                if items:
                    rendered = ",".join(f'{k}="{v}"' for k, v in items)
                    key = f"{family.name}{{{rendered}}}"
                if isinstance(metric, LatencyHistogram):
                    result[key] = metric.snapshot()
                else:
                    result[key] = metric.value
        return result

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MetricsRegistry({len(self)} series, {len(self._families)} families)"
