"""Cross-layer observability for the serving stack (:mod:`repro.telemetry`).

The telemetry layer gives every subsystem -- service caches, batch
executor, admission queue, coalescer, routing engine, ingest pipeline --
one place to report through:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`LatencyHistogram` families (:mod:`.metrics`);
* sampled per-request :class:`Trace`/:class:`Span` contexts and a bounded
  :class:`SlowQueryLog` (:mod:`.trace`);
* exporters: :func:`render_prometheus`, JSON snapshots, and the
  background :class:`StatsReporter` (:mod:`.export`);
* the :class:`GaugeSampler` time-series primitive (:mod:`.sampling`);
* sliding-window reducers over cumulative metrics --
  :class:`CounterWindow`, :class:`HistogramWindow`, :class:`GaugeWindow`
  (:mod:`.windows`) -- the bridge from forever-growing counters to
  "what happened in the last minute" questions (SLO burn rates);
* the :class:`Telemetry` hub bundling one registry + one tracer
  (:mod:`.hub`).

Instrumentation is callback-first: components keep their existing
counters and expose them as live gauges, so attaching telemetry adds no
parallel bookkeeping and near-zero hot-path cost
(``benchmarks/bench_telemetry_overhead.py`` gates the regression at 3%).
"""

from .export import StatsReporter, parse_prometheus_text, render_prometheus
from .hub import Telemetry
from .metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    default_latency_bounds,
)
from .sampling import GaugeSampler
from .trace import SlowQueryLog, Span, Trace, Tracer
from .windows import CounterWindow, GaugeWindow, HistogramWindow

__all__ = [
    "Counter",
    "CounterWindow",
    "Gauge",
    "GaugeSampler",
    "GaugeWindow",
    "HistogramWindow",
    "LatencyHistogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "StatsReporter",
    "Telemetry",
    "Trace",
    "Tracer",
    "default_latency_bounds",
    "parse_prometheus_text",
    "render_prometheus",
]
