"""Per-request tracing: spans, sampled traces, and a bounded slow-query log.

A :class:`Trace` rides a front-end ticket through its whole life: the
admission wait, the coalescer linger, batch execution, and the kernel or
routing work inside the service, each recorded as a :class:`Span` with a
start/end offset and free-form annotations (cache hit, batch size,
routing expansions, estimator stage timings).

Traces are *sampled* -- :class:`Tracer` hands one out every Nth request --
so tracing cost is amortised to near zero at high QPS while still giving
a continuous picture.  Finished traces feed a :class:`SlowQueryLog`, a
bounded min-heap that keeps only the worst-K traces by duration: the
answer to "what do our slowest requests actually spend their time on"
without retaining unbounded history.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from ..exceptions import TelemetryError


class Span:
    """One named, timed stage inside a trace (absolute perf_counter times)."""

    __slots__ = ("name", "started_at_s", "ended_at_s", "annotations")

    def __init__(
        self,
        name: str,
        started_at_s: float,
        ended_at_s: float | None = None,
        annotations: dict | None = None,
    ) -> None:
        self.name = name
        self.started_at_s = started_at_s
        self.ended_at_s = ended_at_s
        self.annotations = annotations or {}

    @property
    def duration_s(self) -> float:
        if self.ended_at_s is None:
            return 0.0
        return max(0.0, self.ended_at_s - self.started_at_s)

    def to_dict(self, origin_s: float = 0.0) -> dict:
        payload = {
            "name": self.name,
            "start_s": round(self.started_at_s - origin_s, 9),
            "duration_s": round(self.duration_s, 9),
        }
        if self.annotations:
            payload["annotations"] = dict(self.annotations)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Span({self.name}, {self.duration_s * 1e3:.3f}ms)"


class Trace:
    """The timed story of one request: an ordered list of spans + annotations.

    Spans can be added two ways: :meth:`span` as a context manager around
    live code, or :meth:`add_span` for stages whose timestamps were
    measured elsewhere (the admission queue already records submit and
    dequeue times; re-measuring them would be parallel bookkeeping).
    Thread-safe without a lock: writers only ``list.append`` /
    ``dict.update``, both atomic under the GIL, and readers copy before
    iterating -- a trace is built by at most a couple of threads a handful
    of times, so lock-free is both correct and cheaper than paying a lock
    allocation per sampled request.
    """

    __slots__ = ("name", "started_at_s", "ended_at_s", "status", "annotations",
                 "spans")

    def __init__(self, name: str, started_at_s: float | None = None) -> None:
        self.name = name
        self.started_at_s = (
            time.perf_counter() if started_at_s is None else started_at_s
        )
        self.ended_at_s: float | None = None
        self.status: str | None = None
        self.annotations: dict = {}
        self.spans: list[Span] = []

    def add_span(
        self,
        name: str,
        started_at_s: float,
        ended_at_s: float,
        **annotations,
    ) -> Span:
        """Record a stage timed externally (timestamps from perf_counter).

        Lock-free: ``list.append`` is atomic under the GIL and readers
        always copy the list before iterating, so the sampled hot path
        skips a lock acquisition per span.
        """
        span = Span(name, started_at_s, ended_at_s, annotations or None)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **annotations) -> Iterator[Span]:
        """Time the enclosed block as a span: ``with trace.span("execute"):``."""
        span = Span(name, time.perf_counter(), None, dict(annotations) or None)
        try:
            yield span
        finally:
            span.ended_at_s = time.perf_counter()
            self.spans.append(span)

    def annotate(self, **kv) -> None:
        self.annotations.update(kv)

    def finish(self, status: str | None = None) -> None:
        if self.ended_at_s is None:
            self.ended_at_s = time.perf_counter()
        if status is not None:
            self.status = status

    @property
    def finished(self) -> bool:
        return self.ended_at_s is not None

    @property
    def duration_s(self) -> float:
        end = self.ended_at_s if self.ended_at_s is not None else time.perf_counter()
        return max(0.0, end - self.started_at_s)

    def span_durations(self) -> dict[str, float]:
        """Total seconds per span name (several same-named spans sum)."""
        spans = list(self.spans)
        totals: dict[str, float] = {}
        for span in spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals

    def to_dict(self) -> dict:
        """JSON-ready: span starts become offsets relative to the trace start."""
        spans = list(self.spans)
        annotations = dict(self.annotations)
        spans.sort(key=lambda s: s.started_at_s)
        payload = {
            "name": self.name,
            "status": self.status,
            "duration_s": round(self.duration_s, 9),
            "spans": [span.to_dict(origin_s=self.started_at_s) for span in spans],
        }
        if annotations:
            payload["annotations"] = annotations
        return payload

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Trace({self.name}, status={self.status}, "
            f"{self.duration_s * 1e3:.3f}ms, {len(self.spans)} spans)"
        )


class SlowQueryLog:
    """A bounded collection of the worst-K finished traces by duration.

    Internally a min-heap keyed on duration: admitting a new trace is
    O(log K), and the fastest of the kept traces is evicted first, so the
    log converges on the true worst-K regardless of arrival order.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise TelemetryError(f"slow-query log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._heap: list[tuple[float, int, Trace]] = []
        self._recorded = 0

    def record(self, trace: Trace) -> None:
        if not trace.finished:
            raise TelemetryError("only finished traces belong in the slow-query log")
        duration = trace.duration_s
        heap = self._heap
        with self._lock:
            self._recorded += 1
            if len(heap) >= self.capacity:
                # Steady state: most traces are faster than the kept worst-K,
                # so reject on a single comparison before building the entry.
                if duration <= heap[0][0]:
                    return
                heapq.heapreplace(heap, (duration, next(self._seq), trace))
            else:
                heapq.heappush(heap, (duration, next(self._seq), trace))

    @property
    def recorded(self) -> int:
        """Total traces ever offered (kept or not)."""
        with self._lock:
            return self._recorded

    def worst(self, n: int | None = None) -> list[Trace]:
        """The kept traces, slowest first (up to ``n``)."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        traces = [entry[2] for entry in entries]
        return traces if n is None else traces[:n]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def to_dicts(self, n: int | None = None) -> list[dict]:
        return [trace.to_dict() for trace in self.worst(n)]


class Tracer:
    """Hands out sampled traces and routes finished ones to the slow-query log.

    ``sample_every=N`` traces one request in N (1 traces everything,
    0 disables tracing entirely).  The sampling decision is one
    ``itertools.count`` increment -- atomic under CPython and cheap enough
    for every request on the hot path.
    """

    def __init__(
        self,
        sample_every: int = 64,
        slow_log_capacity: int = 32,
        recent_capacity: int = 64,
    ) -> None:
        if sample_every < 0:
            raise TelemetryError(f"sample_every must be >= 0, got {sample_every}")
        if recent_capacity < 1:
            raise TelemetryError(f"recent_capacity must be >= 1, got {recent_capacity}")
        self.sample_every = sample_every
        self.slow_queries = SlowQueryLog(slow_log_capacity)
        #: The newest finished traces, oldest first (the slow-query log keeps
        #: the *worst*; this keeps the *latest* -- what a live ``/traces``
        #: endpoint should show).  A bounded deque: appends are atomic under
        #: the GIL and readers snapshot with ``list()``.
        self._recent: "deque[Trace]" = deque(maxlen=recent_capacity)
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._started = 0
        self._finished = 0

    def maybe_trace(self, name: str) -> Trace | None:
        """A new :class:`Trace` for every Nth call, ``None`` otherwise."""
        every = self.sample_every
        if every == 0 or next(self._counter) % every != 0:
            return None
        return self.trace(name)

    def trace(self, name: str) -> Trace:
        """Unconditionally start a new trace (counts toward ``traces_started``).

        Callers that keep their own sampling counter (the front-end inlines
        the every-Nth decision on its submit path) use this for the sampled
        few instead of paying a ``maybe_trace`` call per request.
        """
        with self._lock:
            self._started += 1
        return Trace(name)

    def finish(self, trace: Trace | None, status: str | None = None) -> None:
        """Finish ``trace`` (no-op for ``None``) and log it if slow."""
        if trace is None:
            return
        trace.finish(status)
        with self._lock:
            self._finished += 1
        self._recent.append(trace)
        self.slow_queries.record(trace)

    def recent_traces(self, n: int | None = None) -> list[Trace]:
        """The newest finished traces, newest first (up to ``n``)."""
        traces = list(self._recent)
        traces.reverse()
        return traces if n is None else traces[:n]

    def recent_to_dicts(self, n: int | None = None) -> list[dict]:
        return [trace.to_dict() for trace in self.recent_traces(n)]

    @property
    def traces_started(self) -> int:
        with self._lock:
            return self._started

    @property
    def traces_finished(self) -> int:
        with self._lock:
            return self._finished

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Tracer(every={self.sample_every}, started={self.traces_started}, "
            f"slow_log={len(self.slow_queries)}/{self.slow_queries.capacity})"
        )
