"""Sliding-window reducers over cumulative metrics.

The registry's metrics are *cumulative*: counters only grow, histograms
only accumulate.  Alerting needs *windows*: "what fraction of requests
in the last minute were slow", not "since the process started".  The
reducers here bridge the two without touching the hot path: a window
periodically *samples* its source metric (a cheap read of bookkeeping
that already exists) into a bounded ring of ``(timestamp, snapshot)``
pairs, and answers windowed questions by differencing the newest sample
against the sample closest to the window's left edge.

Three reducers cover the SLO engine's needs:

* :class:`CounterWindow` -- deltas and rates of a scalar cumulative
  value (a :class:`~.metrics.Counter`, a gauge-backed running total, or
  any ``read_fn``);
* :class:`HistogramWindow` -- windowed bucket deltas of a
  :class:`~.metrics.LatencyHistogram`, supporting "fraction of events at
  most X" and windowed percentiles;
* :class:`GaugeWindow` -- a ring of point-in-time gauge readings,
  supporting "fraction of recent samples above a limit".

All reducers take an explicit ``now`` (seconds, any monotonic origin) on
``sample`` and on every query, so the SLO engine can drive them from one
clock and tests can drive them from a synthetic one.  None of them spawn
threads; whoever evaluates (the :class:`~repro.ops.SLOEngine` loop)
calls ``sample`` at its own cadence.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Sequence

from ..exceptions import TelemetryError
from .metrics import LatencyHistogram


def _validate_horizon(horizon_s: float) -> float:
    if not horizon_s > 0:
        raise TelemetryError(f"window horizon_s must be positive, got {horizon_s}")
    return float(horizon_s)


class _SampleRing:
    """A time-ordered ring of ``(now, payload)`` samples pruned to a horizon.

    The left edge keeps *one* sample older than the horizon: a window
    query differences against the sample at or before ``now - window_s``,
    so discarding everything older than the horizon exactly would leave
    the widest window with no baseline.
    """

    __slots__ = ("horizon_s", "_samples")

    def __init__(self, horizon_s: float) -> None:
        self.horizon_s = _validate_horizon(horizon_s)
        self._samples: deque[tuple[float, object]] = deque()

    def append(self, now: float, payload) -> None:
        samples = self._samples
        if samples and now < samples[-1][0]:
            raise TelemetryError(
                f"window samples must be time-ordered: {now} < {samples[-1][0]}"
            )
        samples.append((now, payload))
        edge = now - self.horizon_s
        while len(samples) >= 2 and samples[1][0] <= edge:
            samples.popleft()

    def latest(self) -> tuple[float, object] | None:
        return self._samples[-1] if self._samples else None

    def baseline(self, edge: float) -> tuple[float, object] | None:
        """The newest sample at or before ``edge`` (oldest sample if none)."""
        chosen = None
        for ts, payload in self._samples:
            if ts <= edge:
                chosen = (ts, payload)
            else:
                break
        if chosen is None and self._samples:
            chosen = self._samples[0]
        return chosen

    def since(self, edge: float) -> list[tuple[float, object]]:
        return [(ts, payload) for ts, payload in self._samples if ts > edge]

    def __len__(self) -> int:
        return len(self._samples)


class CounterWindow:
    """Windowed deltas/rates of a cumulative scalar read by ``read_fn``.

    ``read_fn`` is typically a bound counter ``.value`` or a lambda over a
    component's existing bookkeeping (the same callables that back the
    registry's gauges).  A window with fewer than two samples reports
    ``None`` -- "no data yet" is different from "zero events", and the
    SLO engine must not alert (or clear) on an empty window.
    """

    def __init__(self, read_fn: Callable[[], float], horizon_s: float) -> None:
        self._read = read_fn
        self._ring = _SampleRing(horizon_s)

    def sample(self, now: float) -> float:
        value = float(self._read())
        self._ring.append(now, value)
        return value

    def delta(self, window_s: float, now: float) -> float | None:
        """Events in ``(now - window_s, now]``, or ``None`` with <2 samples."""
        if len(self._ring) < 2:
            return None
        latest = self._ring.latest()
        base = self._ring.baseline(now - window_s)
        if latest is None or base is None or latest[0] <= base[0]:
            return None
        # Counters are monotone; a negative delta means the source was
        # reset (component restart) -- treat the window as fresh.
        return max(float(latest[1]) - float(base[1]), 0.0)

    def rate(self, window_s: float, now: float) -> float | None:
        """Events per second over the actual covered span (``None`` if empty)."""
        if len(self._ring) < 2:
            return None
        latest = self._ring.latest()
        base = self._ring.baseline(now - window_s)
        span = latest[0] - base[0]
        if span <= 0:
            return None
        return max(float(latest[1]) - float(base[1]), 0.0) / span


class HistogramWindow:
    """Windowed bucket deltas of a :class:`LatencyHistogram`.

    Each sample snapshots the histogram's cumulative ``(le, count)``
    buckets; a window is the elementwise difference of two snapshots,
    which is itself a histogram of just the window's events.  That gives
    the two reductions burn-rate alerting needs: the fraction of windowed
    events at most a threshold (latency SLO compliance) and interpolated
    windowed percentiles (dashboards).
    """

    def __init__(self, histogram: LatencyHistogram, horizon_s: float) -> None:
        self.histogram = histogram
        self._ring = _SampleRing(horizon_s)

    def sample(self, now: float) -> None:
        counts = tuple(count for _, count in self.histogram.cumulative_buckets())
        self._ring.append(now, counts)

    def _window_counts(self, window_s: float, now: float) -> tuple[list[int], int] | None:
        if len(self._ring) < 2:
            return None
        latest = self._ring.latest()
        base = self._ring.baseline(now - window_s)
        if latest is None or base is None or latest[0] <= base[0]:
            return None
        newest: Sequence[int] = latest[1]
        oldest: Sequence[int] = base[1]
        if len(newest) != len(oldest):  # histogram rebuilt with new bounds
            return None
        counts = [max(int(b) - int(a), 0) for a, b in zip(oldest, newest)]
        return counts, counts[-1]

    def count(self, window_s: float, now: float) -> int | None:
        """Events inside the window (``None`` with <2 samples)."""
        window = self._window_counts(window_s, now)
        return None if window is None else window[1]

    def fraction_at_most(self, threshold: float, window_s: float, now: float) -> float | None:
        """Fraction of windowed events with value <= ``threshold``.

        The threshold is resolved against the histogram's bucket bounds
        conservatively: events are credited as "good" only up to the last
        bucket edge <= ``threshold``, so a threshold inside a bucket never
        over-counts compliance.
        """
        window = self._window_counts(window_s, now)
        if window is None:
            return None
        counts, total = window
        if total == 0:
            return None
        bounds = self.histogram.bounds
        credited = 0
        for index, bound in enumerate(bounds):
            if bound <= threshold:
                credited = counts[index]
            else:
                break
        return credited / total

    def percentiles(
        self,
        window_s: float,
        now: float,
        points: Iterable[float] = (50.0, 95.0, 99.0),
    ) -> dict[str, float]:
        """Interpolated percentiles of just the window's events (``{}`` if none)."""
        from ..frontend.stats import percentile_label

        window = self._window_counts(window_s, now)
        if window is None or window[1] == 0:
            return {}
        cumulative, total = window
        bounds = self.histogram.bounds
        results: dict[str, float] = {}
        for point in points:
            if not 0.0 <= point <= 100.0:
                raise TelemetryError(f"percentile points must be in [0, 100], got {point}")
            rank = point / 100.0 * total
            value = float(bounds[-1])
            previous = 0
            for index in range(len(cumulative)):
                here = cumulative[index]
                if here >= rank and here > previous:
                    if index >= len(bounds):  # overflow bucket: no upper edge
                        value = float(bounds[-1])
                        break
                    lower = bounds[index - 1] if index > 0 else 0.0
                    upper = bounds[index]
                    fraction = (max(rank, previous) - previous) / (here - previous)
                    value = lower + (upper - lower) * fraction
                    break
                previous = here
            results[percentile_label(point)] = value
        return results


class GaugeWindow:
    """A ring of point-in-time gauge readings (levels, not cumulative counts).

    Backs SLOs over *conditions* rather than events: "the ingest backlog
    was above its staleness limit for 30% of the last minute".  Each
    sample is one reading; windowed reductions are over the readings
    whose timestamps fall inside the window.
    """

    def __init__(self, read_fn: Callable[[], float], horizon_s: float) -> None:
        self._read = read_fn
        self._ring = _SampleRing(horizon_s)

    def sample(self, now: float) -> float:
        value = float(self._read())
        self._ring.append(now, value)
        return value

    def latest(self) -> float | None:
        sample = self._ring.latest()
        return None if sample is None else float(sample[1])

    def fraction_above(self, limit: float, window_s: float, now: float) -> float | None:
        """Fraction of windowed readings strictly above ``limit`` (None if none)."""
        readings = self._ring.since(now - window_s)
        if not readings:
            return None
        bad = sum(1 for _, value in readings if float(value) > limit)
        return bad / len(readings)

    def maximum(self, window_s: float, now: float) -> float | None:
        readings = self._ring.since(now - window_s)
        if not readings:
            return None
        return max(float(value) for _, value in readings)
