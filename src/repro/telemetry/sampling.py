"""Background gauge sampling: turn any live gauge into a time series.

:class:`GaugeSampler` runs a daemon thread that evaluates a zero-argument
callable (a raw function, or a registry :class:`~.metrics.Gauge` via its
``value`` property) at a fixed interval and collects ``(elapsed_s, value)``
pairs.  It is the primitive behind the front-end's
:class:`~repro.frontend.stats.DepthSampler` -- the queue-depth series in a
``LoadReport`` and the live ``repro_frontend_queue_depth`` gauge both read
the same underlying callable, so they can never disagree.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..exceptions import TelemetryError


class GaugeSampler:
    """Samples a gauge callable on a background thread into a time series.

    ``transform`` post-processes each raw reading (e.g. ``int`` for depth
    counts); samples are ``(seconds since start, transformed value)``.
    Use as a context manager or via explicit :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        gauge: Callable[[], float],
        interval_s: float = 0.01,
        transform: Callable[[float], float] | None = None,
        thread_name: str = "gauge-sampler",
    ) -> None:
        if interval_s <= 0:
            raise TelemetryError(f"interval_s must be positive, got {interval_s}")
        self._gauge = gauge
        self._interval_s = interval_s
        self._transform = transform
        self._thread_name = thread_name
        self._samples: list[tuple[float, float]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    def start(self) -> "GaugeSampler":
        if self._thread is not None:
            raise TelemetryError("sampler already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name=self._thread_name, daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            value = self._gauge()
            if self._transform is not None:
                value = self._transform(value)
            self._samples.append((time.perf_counter() - self._started_at, value))

    def stop(self) -> list[tuple[float, float]]:
        """Stop the thread and return the collected ``(elapsed_s, value)`` series."""
        if self._thread is None:
            return []
        self._stop.set()
        self._thread.join()
        self._thread = None
        return list(self._samples)

    @property
    def samples(self) -> list[tuple[float, float]]:
        """The series collected so far (live while running)."""
        return list(self._samples)

    def __enter__(self) -> "GaugeSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
