"""Exporters: Prometheus text rendering and a background JSON-lines reporter.

Two export surfaces cover live operation and offline analysis:

* :func:`render_prometheus` turns a :class:`~.metrics.MetricsRegistry`
  into the Prometheus text exposition format (``# TYPE`` lines, labeled
  series, cumulative ``_bucket{le=...}`` histograms) -- paste-able behind
  any HTTP handler, and parseable by :func:`parse_prometheus_text` (used
  by the golden-file test and the CI smoke job);
* :class:`StatsReporter` appends a timestamped JSON snapshot to a file on
  a background thread at a fixed period -- flight-recorder output that
  survives the process.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from pathlib import Path
from typing import Callable

from ..exceptions import TelemetryError
from .metrics import KIND_HISTOGRAM, LatencyHistogram, MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
#: The three escapes the Prometheus text format defines for label values.
#: Everything else -- including ``{``, ``}``, ``,``, spaces, and raw
#: carriage returns -- passes through verbatim inside the quotes, which is
#: why the parser below tokenizes label blocks instead of regexing to the
#: first ``}``.
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}
_LABEL_UNESCAPES = {"\\": "\\", "n": "\n", '"': '"'}


def _sanitize_name(name: str) -> str:
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _unescape_label_value(value: str) -> str:
    """Invert :func:`_escape_label_value` (strict: unknown escapes raise)."""
    out: list[str] = []
    index = 0
    n = len(value)
    while index < n:
        ch = value[index]
        if ch == "\\":
            if index + 1 >= n:
                raise TelemetryError(f"dangling backslash in label value {value!r}")
            replacement = _LABEL_UNESCAPES.get(value[index + 1])
            if replacement is None:
                raise TelemetryError(
                    f"unknown escape \\{value[index + 1]!r} in label value {value!r}"
                )
            out.append(replacement)
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)


def _render_labels(items: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{_sanitize_name(k)}="{_escape_label_value(v)}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else repr(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (families name-sorted)."""
    lines: list[str] = []
    for family in registry.families():
        name = _sanitize_name(family.name)
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for items, metric in sorted(family.children.items()):
            if isinstance(metric, LatencyHistogram):
                for bound, cumulative in metric.cumulative_buckets():
                    le = f'le="{_format_le(bound)}"'
                    lines.append(f"{name}_bucket{_render_labels(items, le)} {cumulative}")
                lines.append(f"{name}_sum{_render_labels(items)} {_format_value(metric.sum)}")
                lines.append(f"{name}_count{_render_labels(items)} {metric.count}")
            else:
                lines.append(f"{name}{_render_labels(items)} {_format_value(metric.value)}")
    return "\n".join(lines) + "\n"


_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


def _parse_label_block(
    line: str, pos: int, lineno: int
) -> tuple[list[tuple[str, str]], int]:
    """Tokenize ``{k="v",...}`` starting at ``line[pos] == '{'``.

    Returns the (name, unescaped value) pairs in source order and the
    index just past the closing ``}``.  A regex can't do this: label
    values may legally contain ``}``, ``{``, ``,``, and spaces inside
    the quotes, so the closing brace is only found by walking the
    escapes.
    """
    items: list[tuple[str, str]] = []
    pos += 1  # consume '{'
    if pos < len(line) and line[pos] == "}":
        return items, pos + 1
    while True:
        match = _LABEL_NAME.match(line, pos)
        if match is None:
            raise TelemetryError(
                f"malformed label name on exposition line {lineno}: {line!r}"
            )
        key = match.group(0)
        pos = match.end()
        if pos + 1 >= len(line) or line[pos] != "=" or line[pos + 1] != '"':
            raise TelemetryError(
                f'expected ="value" after label {key!r} on exposition line {lineno}'
            )
        pos += 2  # consume '="'
        chars: list[str] = []
        while True:
            if pos >= len(line):
                raise TelemetryError(
                    f"unterminated label value on exposition line {lineno}: {line!r}"
                )
            ch = line[pos]
            if ch == "\\":
                if pos + 1 >= len(line):
                    raise TelemetryError(
                        f"dangling backslash on exposition line {lineno}: {line!r}"
                    )
                replacement = _LABEL_UNESCAPES.get(line[pos + 1])
                if replacement is None:
                    raise TelemetryError(
                        f"unknown escape \\{line[pos + 1]} on exposition line {lineno}"
                    )
                chars.append(replacement)
                pos += 2
            elif ch == '"':
                pos += 1
                break
            else:
                chars.append(ch)
                pos += 1
        items.append((key, "".join(chars)))
        if pos < len(line) and line[pos] == ",":
            pos += 1
            continue
        if pos < len(line) and line[pos] == "}":
            return items, pos + 1
        raise TelemetryError(
            f"expected ',' or '}}' after label value on exposition line {lineno}"
        )


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{series: value}`` (validation helper).

    Strict about what :func:`render_prometheus` emits: every non-comment
    line must be ``name[{labels}] value`` with a finite-or-special float
    value.  Label values are tokenized with full escape handling, so
    values containing ``}``, ``,``, quotes, backslashes, or newlines
    (escaped as ``\\n``) round-trip exactly; the series key is rebuilt by
    re-escaping, so it matches what :func:`render_prometheus` emitted.
    Raises :class:`~repro.exceptions.TelemetryError` on any malformed
    line, which is exactly what the CI smoke job wants to fail on.

    The text is split on ``\\n`` only -- a raw carriage return inside a
    quoted label value stays inside its line rather than splitting it
    (``str.splitlines`` would break there); a single trailing ``\\r`` per
    line is tolerated for CRLF transports.
    """
    series: dict[str, float] = {}
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw[:-1] if raw.endswith("\r") else raw
        line = line.strip(" \t")
        if not line or line.startswith("#"):
            continue
        match = _METRIC_NAME.match(line)
        if match is None:
            raise TelemetryError(f"malformed exposition line {lineno}: {raw!r}")
        name = match.group(0)
        pos = match.end()
        if pos < len(line) and line[pos] == "{":
            items, pos = _parse_label_block(line, pos, lineno)
            labels = _render_labels(tuple(items))
        else:
            labels = ""
        rest = line[pos:]
        if not rest or rest[0] not in " \t":
            raise TelemetryError(f"malformed exposition line {lineno}: {raw!r}")
        value_text = rest.strip(" \t")
        if not value_text or " " in value_text or "\t" in value_text:
            raise TelemetryError(
                f"expected a single value on exposition line {lineno}: {raw!r}"
            )
        try:
            value = float(value_text)
        except ValueError as exc:
            raise TelemetryError(
                f"bad value on exposition line {lineno}: {value_text!r}"
            ) from exc
        key = name + labels
        if key in series:
            raise TelemetryError(f"duplicate series on line {lineno}: {key}")
        series[key] = value
    return series


class StatsReporter:
    """Appends a periodic JSON-lines snapshot to a file from a daemon thread.

    ``snapshot_fn`` is any zero-argument callable returning a JSON-ready
    mapping (typically ``Telemetry.snapshot`` or
    ``ServingFrontend.stats_snapshot``); each line gains ``ts`` (unix
    seconds) and ``elapsed_s`` since the reporter started.  A final
    snapshot is written on :meth:`stop`, so short runs still produce at
    least one line.

    Long-running daemons bound the output with ``max_bytes``: when the
    next line would push the file past the budget, the reporter either
    rotates once (``on_full="rotate"``: the current file moves to
    ``<path>.1``, replacing any previous rotation, so total disk stays
    under ~2x the budget) or drops oldest lines in place
    (``on_full="truncate"``: the newest lines that fit are kept, so the
    file itself never exceeds the budget by more than one line).
    ``fsync_period_s`` additionally fsyncs the file at most that often --
    flight-recorder durability across power loss without paying an fsync
    per line.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], dict],
        path: str | Path,
        period_s: float = 1.0,
        max_bytes: int | None = None,
        on_full: str = "rotate",
        fsync_period_s: float | None = None,
    ) -> None:
        if period_s <= 0:
            raise TelemetryError(f"period_s must be positive, got {period_s}")
        if max_bytes is not None and max_bytes < 1:
            raise TelemetryError(f"max_bytes must be >= 1, got {max_bytes}")
        if on_full not in ("rotate", "truncate"):
            raise TelemetryError(
                f"on_full must be 'rotate' or 'truncate', got {on_full!r}"
            )
        if fsync_period_s is not None and fsync_period_s < 0:
            raise TelemetryError(
                f"fsync_period_s must be >= 0, got {fsync_period_s}"
            )
        self._snapshot_fn = snapshot_fn
        self.path = Path(path)
        self._period_s = period_s
        self._max_bytes = max_bytes
        self._on_full = on_full
        self._fsync_period_s = fsync_period_s
        self._last_fsync = float("-inf")
        self._rotations = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0
        self._lines_written = 0
        self._write_lock = threading.Lock()

    @property
    def rotations(self) -> int:
        """How many times the output hit ``max_bytes`` (rotate or truncate)."""
        with self._write_lock:
            return self._rotations

    def _current_size(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def _make_room(self, incoming_bytes: int) -> None:
        """The next line would exceed ``max_bytes``: rotate or drop oldest."""
        self._rotations += 1
        if self._on_full == "rotate":
            os.replace(self.path, self.path.with_name(self.path.name + ".1"))
            return
        # truncate: keep the newest complete lines that still leave room for
        # the incoming line within the budget.
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        budget = self._max_bytes - incoming_bytes
        kept = b""
        if budget > 0:
            tail = raw[-budget:]
            # Drop the partial first line of the tail so every kept line is
            # complete JSON.
            newline = tail.find(b"\n")
            if newline >= 0 and len(tail) < len(raw):
                kept = tail[newline + 1:]
            elif len(tail) == len(raw):
                kept = tail
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_bytes(kept)
        os.replace(tmp, self.path)

    def _write_line(self) -> None:
        payload = dict(self._snapshot_fn())
        payload["ts"] = time.time()
        payload["elapsed_s"] = round(time.perf_counter() - self._started_at, 6)
        line = json.dumps(payload, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        with self._write_lock:
            if (
                self._max_bytes is not None
                and self._current_size() + len(data) > self._max_bytes
                and self._current_size() > 0
            ):
                self._make_room(len(data))
            with self.path.open("ab") as handle:
                handle.write(data)
                if self._fsync_period_s is not None:
                    now = time.monotonic()
                    if now - self._last_fsync >= self._fsync_period_s:
                        handle.flush()
                        os.fsync(handle.fileno())
                        self._last_fsync = now
            self._lines_written += 1

    @property
    def lines_written(self) -> int:
        with self._write_lock:
            return self._lines_written

    def start(self) -> "StatsReporter":
        if self._thread is not None:
            raise TelemetryError("reporter already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._thread = threading.Thread(
            target=self._run, name="stats-reporter", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._period_s):
            self._write_line()

    def stop(self) -> int:
        """Stop the thread, write one final line, return total lines written."""
        if self._thread is None:
            return self.lines_written
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._write_line()
        return self.lines_written

    def __enter__(self) -> "StatsReporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
