"""Exporters: Prometheus text rendering and a background JSON-lines reporter.

Two export surfaces cover live operation and offline analysis:

* :func:`render_prometheus` turns a :class:`~.metrics.MetricsRegistry`
  into the Prometheus text exposition format (``# TYPE`` lines, labeled
  series, cumulative ``_bucket{le=...}`` histograms) -- paste-able behind
  any HTTP handler, and parseable by :func:`parse_prometheus_text` (used
  by the golden-file test and the CI smoke job);
* :class:`StatsReporter` appends a timestamped JSON snapshot to a file on
  a background thread at a fixed period -- flight-recorder output that
  survives the process.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from pathlib import Path
from typing import Callable

from ..exceptions import TelemetryError
from .metrics import KIND_HISTOGRAM, LatencyHistogram, MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _sanitize_name(name: str) -> str:
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _render_labels(items: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{_sanitize_name(k)}="{_escape_label_value(v)}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else repr(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (families name-sorted)."""
    lines: list[str] = []
    for family in registry.families():
        name = _sanitize_name(family.name)
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for items, metric in sorted(family.children.items()):
            if isinstance(metric, LatencyHistogram):
                for bound, cumulative in metric.cumulative_buckets():
                    le = f'le="{_format_le(bound)}"'
                    lines.append(f"{name}_bucket{_render_labels(items, le)} {cumulative}")
                lines.append(f"{name}_sum{_render_labels(items)} {_format_value(metric.sum)}")
                lines.append(f"{name}_count{_render_labels(items)} {metric.count}")
            else:
                lines.append(f"{name}{_render_labels(items)} {_format_value(metric.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{series: value}`` (validation helper).

    Strict about what :func:`render_prometheus` emits: every non-comment
    line must be ``name[{labels}] value`` with a finite-or-special float
    value, and every series name must be legal.  Raises
    :class:`~repro.exceptions.TelemetryError` on any malformed line, which
    is exactly what the CI smoke job wants to fail on.
    """
    series: dict[str, float] = {}
    line_pattern = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
    )
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = line_pattern.match(line)
        if match is None:
            raise TelemetryError(f"malformed exposition line {lineno}: {raw!r}")
        name, labels, value_text = match.groups()
        try:
            value = float(value_text)
        except ValueError as exc:
            raise TelemetryError(
                f"bad value on exposition line {lineno}: {value_text!r}"
            ) from exc
        key = name + (labels or "")
        if key in series:
            raise TelemetryError(f"duplicate series on line {lineno}: {key}")
        series[key] = value
    return series


class StatsReporter:
    """Appends a periodic JSON-lines snapshot to a file from a daemon thread.

    ``snapshot_fn`` is any zero-argument callable returning a JSON-ready
    mapping (typically ``Telemetry.snapshot`` or
    ``ServingFrontend.stats_snapshot``); each line gains ``ts`` (unix
    seconds) and ``elapsed_s`` since the reporter started.  A final
    snapshot is written on :meth:`stop`, so short runs still produce at
    least one line.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], dict],
        path: str | Path,
        period_s: float = 1.0,
    ) -> None:
        if period_s <= 0:
            raise TelemetryError(f"period_s must be positive, got {period_s}")
        self._snapshot_fn = snapshot_fn
        self.path = Path(path)
        self._period_s = period_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0
        self._lines_written = 0
        self._write_lock = threading.Lock()

    def _write_line(self) -> None:
        payload = dict(self._snapshot_fn())
        payload["ts"] = time.time()
        payload["elapsed_s"] = round(time.perf_counter() - self._started_at, 6)
        line = json.dumps(payload, sort_keys=True, default=str)
        with self._write_lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            self._lines_written += 1

    @property
    def lines_written(self) -> int:
        with self._write_lock:
            return self._lines_written

    def start(self) -> "StatsReporter":
        if self._thread is not None:
            raise TelemetryError("reporter already started")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._thread = threading.Thread(
            target=self._run, name="stats-reporter", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._period_s):
            self._write_line()

    def stop(self) -> int:
        """Stop the thread, write one final line, return total lines written."""
        if self._thread is None:
            return self.lines_written
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._write_line()
        return self.lines_written

    def __enter__(self) -> "StatsReporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
