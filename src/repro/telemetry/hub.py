"""The :class:`Telemetry` hub: one registry + one tracer per serving stack.

Components accept ``telemetry=`` at construction and register their
existing bookkeeping as callback-backed gauges; the hub is where an
operator (or the :class:`~.export.StatsReporter`) asks for the combined
view.  One hub is usually shared by a service, its front-end, and its
ingest pipeline, so the snapshot covers the whole stack.
"""

from __future__ import annotations

from pathlib import Path

from ..config import DEFAULT_TELEMETRY_PARAMETERS, TelemetryParameters
from .export import StatsReporter, render_prometheus
from .metrics import MetricsRegistry
from .trace import Tracer


class Telemetry:
    """Bundles a :class:`MetricsRegistry` and a sampled :class:`Tracer`."""

    def __init__(self, parameters: TelemetryParameters | None = None) -> None:
        self.parameters = parameters or DEFAULT_TELEMETRY_PARAMETERS
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            sample_every=self.parameters.trace_sample_every,
            slow_log_capacity=self.parameters.slow_log_capacity,
            recent_capacity=self.parameters.recent_traces_capacity,
        )

    def snapshot(self) -> dict:
        """Every registered metric plus tracing totals, JSON-ready."""
        return {
            "metrics": self.registry.snapshot(),
            "traces": {
                "sample_every": self.tracer.sample_every,
                "started": self.tracer.traces_started,
                "finished": self.tracer.traces_finished,
                "slow_log_size": len(self.tracer.slow_queries),
            },
        }

    def slow_queries(self, n: int | None = None) -> list[dict]:
        """The worst traced requests, slowest first, as JSON-ready dicts."""
        return self.tracer.slow_queries.to_dicts(n)

    def recent_traces(self, n: int | None = None) -> list[dict]:
        """The newest finished traces, newest first, as JSON-ready dicts."""
        return self.tracer.recent_to_dicts(n)

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return render_prometheus(self.registry)

    def reporter(
        self, path: str | Path, period_s: float | None = None, **kwargs
    ) -> StatsReporter:
        """A :class:`StatsReporter` writing this hub's snapshots to ``path``.

        Extra keyword arguments (``max_bytes``, ``on_full``,
        ``fsync_period_s``) pass through to the reporter.
        """
        return StatsReporter(
            self.snapshot,
            path,
            period_s=period_s if period_s is not None else self.parameters.reporter_period_s,
            **kwargs,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Telemetry({len(self.registry)} series, {self.tracer!r})"
