"""Hybrid-graph path cost distribution estimation from trajectory data.

A reproduction of Dai, Yang, Guo, Jensen, Hu: *Path Cost Distribution
Estimation Using Trajectory Data*, PVLDB 10(3), 2016.

The public API re-exports the pieces a typical user needs:

* road-network modelling (:class:`RoadNetwork`, :class:`Path`),
* trajectory generation / storage (:class:`TrafficSimulator`,
  :class:`TrajectoryStore`, :class:`HMMMapMatcher`),
* the hybrid graph and its estimators (:class:`HybridGraphBuilder`,
  :class:`HybridGraph`, :class:`PathCostEstimator`, the baselines),
* histograms (:class:`Histogram1D`, :class:`MultiHistogram`),
* stochastic routing (:class:`DFSStochasticRouter`), and
* the online estimation service (:class:`CostEstimationService`).
"""

from .config import (
    DEFAULT_ESTIMATOR_PARAMETERS,
    DEFAULT_EXPERIMENT_PARAMETERS,
    DEFAULT_SERVICE_PARAMETERS,
    DEFAULT_SIMULATION_PARAMETERS,
    EstimatorParameters,
    ExperimentParameters,
    ServiceParameters,
    SimulationParameters,
)
from .exceptions import (
    ConfigurationError,
    EstimationError,
    GraphError,
    HistogramError,
    InstantiationError,
    MapMatchingError,
    PathError,
    ReproError,
    RoutingError,
    ServiceError,
    TrajectoryError,
)
from .timeutil import TimeInterval, all_intervals, format_time, interval_of, parse_time
from .roadnet import (
    Edge,
    Path,
    RoadNetwork,
    Vertex,
    aalborg_like,
    beijing_like,
    grid_network,
    k_shortest_paths,
    ring_radial_city,
    shortest_path,
)
from .histograms import (
    Bucket,
    Histogram1D,
    MultiHistogram,
    RawDistribution,
    build_auto_histogram,
    entropy_of_histogram,
    histogram_kl_divergence,
    kl_divergence_from_samples,
)
from .trajectories import (
    HMMMapMatcher,
    MatchedTrajectory,
    PathObservation,
    TrafficSimulator,
    Trajectory,
    TrajectoryStore,
)
from .core import (
    AccuracyOptimalEstimator,
    CostEstimate,
    HPBaseline,
    HybridGraph,
    HybridGraphBuilder,
    InstantiatedVariable,
    LegacyBaseline,
    PathCostEstimator,
    RandomDecompositionEstimator,
)
from .routing import DFSStochasticRouter, IncrementalCostEstimator, ProbabilisticBudgetQuery
from .service import (
    CacheStats,
    CostEstimationService,
    EstimateRequest,
    EstimateResponse,
    LRUCache,
    WarmupReport,
)

__version__ = "1.1.0"

__all__ = [
    "AccuracyOptimalEstimator",
    "Bucket",
    "CacheStats",
    "ConfigurationError",
    "CostEstimate",
    "CostEstimationService",
    "DEFAULT_ESTIMATOR_PARAMETERS",
    "DEFAULT_EXPERIMENT_PARAMETERS",
    "DEFAULT_SERVICE_PARAMETERS",
    "DEFAULT_SIMULATION_PARAMETERS",
    "DFSStochasticRouter",
    "Edge",
    "EstimateRequest",
    "EstimateResponse",
    "EstimationError",
    "EstimatorParameters",
    "ExperimentParameters",
    "GraphError",
    "HMMMapMatcher",
    "HPBaseline",
    "Histogram1D",
    "HistogramError",
    "HybridGraph",
    "HybridGraphBuilder",
    "IncrementalCostEstimator",
    "InstantiatedVariable",
    "InstantiationError",
    "LRUCache",
    "LegacyBaseline",
    "MapMatchingError",
    "MatchedTrajectory",
    "MultiHistogram",
    "Path",
    "PathCostEstimator",
    "PathError",
    "PathObservation",
    "ProbabilisticBudgetQuery",
    "RandomDecompositionEstimator",
    "RawDistribution",
    "ReproError",
    "RoadNetwork",
    "RoutingError",
    "ServiceError",
    "ServiceParameters",
    "SimulationParameters",
    "TimeInterval",
    "TrafficSimulator",
    "Trajectory",
    "TrajectoryError",
    "TrajectoryStore",
    "Vertex",
    "WarmupReport",
    "aalborg_like",
    "all_intervals",
    "beijing_like",
    "build_auto_histogram",
    "entropy_of_histogram",
    "format_time",
    "grid_network",
    "histogram_kl_divergence",
    "interval_of",
    "k_shortest_paths",
    "kl_divergence_from_samples",
    "parse_time",
    "ring_radial_city",
    "shortest_path",
    "__version__",
]
