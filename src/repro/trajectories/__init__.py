"""Trajectory substrate: GPS records, traffic simulation, map matching, storage."""

from .gps import GPSRecord, Trajectory
from .matched import EdgeTraversal, MatchedTrajectory, PathObservation
from .traffic import TimeOfDayProfile, TrafficModel
from .simulator import TrafficSimulator
from .mapmatching import HMMMapMatcher
from .costs import ghg_emissions_g, travel_time_s
from .store import TrajectoryStore
from .mutable import MutableTrajectoryStore, TrajectorySnapshot

__all__ = [
    "EdgeTraversal",
    "GPSRecord",
    "HMMMapMatcher",
    "MatchedTrajectory",
    "MutableTrajectoryStore",
    "PathObservation",
    "TimeOfDayProfile",
    "TrafficModel",
    "TrafficSimulator",
    "Trajectory",
    "TrajectorySnapshot",
    "TrajectoryStore",
    "ghg_emissions_g",
    "travel_time_s",
]
