"""Edge-level (map-matched) trajectory representation.

After map matching, a trajectory is aligned with a path: a sequence of edge
traversals, each with an entry time and a travel cost.  This is the
representation the hybrid graph instantiation and the trajectory store work
with.  A :class:`PathObservation` is the projection of a matched trajectory
onto one of its sub-paths -- the unit of evidence the paper calls
"a trajectory occurred on path P at time t".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..exceptions import TrajectoryError
from ..roadnet.path import Path


@dataclass(frozen=True)
class EdgeTraversal:
    """One traversal of one edge: when it was entered and how long it took."""

    edge_id: int
    entry_time_s: float
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise TrajectoryError(f"edge traversal cost must be non-negative, got {self.cost}")
        if self.entry_time_s < 0:
            raise TrajectoryError("entry time must be non-negative")


@dataclass(frozen=True)
class PathObservation:
    """One trajectory's traversal of a specific path, starting at ``departure_time_s``.

    ``edge_costs[i]`` is the observed cost on the ``i``-th edge of ``path``;
    ``total_cost`` is their sum (for travel time this equals the difference
    between the last and first GPS timestamps on the path).
    """

    path: Path
    departure_time_s: float
    edge_costs: tuple[float, ...]
    trajectory_id: int

    def __post_init__(self) -> None:
        if len(self.edge_costs) != len(self.path):
            raise TrajectoryError(
                f"expected {len(self.path)} edge costs, got {len(self.edge_costs)}"
            )

    @property
    def total_cost(self) -> float:
        return float(sum(self.edge_costs))


class MatchedTrajectory:
    """A trajectory aligned with a road-network path."""

    __slots__ = ("trajectory_id", "_traversals")

    def __init__(self, trajectory_id: int, traversals: Iterable[EdgeTraversal]) -> None:
        traversals = tuple(traversals)
        if not traversals:
            raise TrajectoryError("a matched trajectory needs at least one edge traversal")
        for earlier, later in zip(traversals[:-1], traversals[1:]):
            if later.entry_time_s < earlier.entry_time_s:
                raise TrajectoryError("edge traversals must be ordered by entry time")
        self.trajectory_id = trajectory_id
        self._traversals = traversals

    # ------------------------------------------------------------------ #
    @classmethod
    def from_costs(
        cls,
        trajectory_id: int,
        edge_ids: Sequence[int],
        departure_time_s: float,
        edge_costs: Sequence[float],
    ) -> "MatchedTrajectory":
        """Build a matched trajectory from per-edge costs and a departure time."""
        if len(edge_ids) != len(edge_costs):
            raise TrajectoryError("edge_ids and edge_costs must have equal length")
        traversals = []
        clock = float(departure_time_s)
        for edge_id, cost in zip(edge_ids, edge_costs):
            traversals.append(EdgeTraversal(int(edge_id), clock, float(cost)))
            clock += float(cost)
        return cls(trajectory_id, traversals)

    # ------------------------------------------------------------------ #
    @property
    def traversals(self) -> tuple[EdgeTraversal, ...]:
        return self._traversals

    @property
    def path(self) -> Path:
        """The path of the trajectory (the paper's ``P_T``)."""
        return Path([traversal.edge_id for traversal in self._traversals])

    @property
    def edge_ids(self) -> tuple[int, ...]:
        return tuple(traversal.edge_id for traversal in self._traversals)

    @property
    def departure_time_s(self) -> float:
        return self._traversals[0].entry_time_s

    @property
    def arrival_time_s(self) -> float:
        last = self._traversals[-1]
        return last.entry_time_s + last.cost

    @property
    def total_cost(self) -> float:
        return float(sum(traversal.cost for traversal in self._traversals))

    @property
    def edge_costs(self) -> tuple[float, ...]:
        return tuple(traversal.cost for traversal in self._traversals)

    def __len__(self) -> int:
        return len(self._traversals)

    # ------------------------------------------------------------------ #
    def observation_on(self, path: Path) -> PathObservation | None:
        """The observation of this trajectory on ``path`` if it occurred on it.

        A trajectory occurred on ``path`` iff ``path`` is a sub-path of the
        trajectory's path; the observation's departure time is the entry
        time into the first edge of ``path``.
        """
        own_ids = self.edge_ids
        needle = path.edge_ids
        span = len(needle)
        for start in range(len(own_ids) - span + 1):
            if own_ids[start : start + span] == needle:
                segment = self._traversals[start : start + span]
                return PathObservation(
                    path=path,
                    departure_time_s=segment[0].entry_time_s,
                    edge_costs=tuple(traversal.cost for traversal in segment),
                    trajectory_id=self.trajectory_id,
                )
        return None

    def observation_at(self, start_index: int, length: int) -> PathObservation:
        """The observation on the sub-path starting at ``start_index`` with ``length`` edges."""
        if start_index < 0 or start_index + length > len(self._traversals):
            raise TrajectoryError(
                f"sub-path [{start_index}, {start_index + length}) out of range "
                f"for trajectory of length {len(self._traversals)}"
            )
        segment = self._traversals[start_index : start_index + length]
        return PathObservation(
            path=Path([traversal.edge_id for traversal in segment]),
            departure_time_s=segment[0].entry_time_s,
            edge_costs=tuple(traversal.cost for traversal in segment),
            trajectory_id=self.trajectory_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MatchedTrajectory({self.trajectory_id}, |P|={len(self)}, "
            f"departs {self.departure_time_s:.0f}s, cost {self.total_cost:.0f})"
        )
