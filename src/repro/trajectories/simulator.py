"""Trajectory simulator: the stand-in for the paper's GPS datasets.

The simulator produces map-matched trajectories (and, on demand, raw GPS
records) over a road network using the correlated traffic model.  The trip
population is designed to mirror the statistical properties of a real taxi
fleet that the paper's method depends on:

* a core of **popular routes** (commuter corridors) that are each traversed
  by many vehicles during their busy interval -- these give the hybrid
  graph enough qualified trajectories to instantiate high-rank path
  weights, and also provide ground-truth distributions for evaluation;
* a long tail of **background trips** between random origin-destination
  pairs spread over the whole day -- these provide edge-level coverage but
  leave long paths sparsely covered, reproducing the sparseness phenomenon
  of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SimulationParameters
from ..exceptions import TrajectoryError
from ..roadnet.graph import RoadNetwork
from ..roadnet.path import Path
from ..roadnet.routing import random_path, shortest_path
from ..roadnet.spatial import interpolate
from .gps import GPSRecord, Trajectory
from .matched import MatchedTrajectory
from .traffic import TrafficModel


@dataclass(frozen=True)
class PopularRoute:
    """A commuter corridor: a path plus the hour around which its traffic clusters."""

    path: Path
    busy_hour: float
    weight: float


class TrafficSimulator:
    """Generates matched trajectories (and GPS records) over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        parameters: SimulationParameters | None = None,
        traffic_model: TrafficModel | None = None,
    ) -> None:
        self.network = network
        self.parameters = parameters or SimulationParameters()
        self.traffic = traffic_model or TrafficModel(network, self.parameters)
        self._rng = np.random.default_rng(self.parameters.seed)
        self.popular_routes = self._build_popular_routes()

    # ------------------------------------------------------------------ #
    # Trip population
    # ------------------------------------------------------------------ #
    def _build_popular_routes(self) -> list[PopularRoute]:
        parameters = self.parameters
        routes: list[PopularRoute] = []
        busy_hours = [7.75, 8.0, 8.25, 8.5, 16.75, 17.0, 17.25, 12.0]
        attempts = 0
        while len(routes) < parameters.popular_route_count and attempts < parameters.popular_route_count * 20:
            attempts += 1
            length = int(self._rng.integers(6, max(7, min(parameters.max_trip_edges, 32))))
            path = random_path(self.network, length, self._rng)
            if path is None:
                continue
            busy_hour = busy_hours[len(routes) % len(busy_hours)]
            weight = float(1.0 + self._rng.random())
            routes.append(PopularRoute(path=path, busy_hour=busy_hour, weight=weight))
        if not routes:
            raise TrajectoryError("could not build any popular routes on this network")
        return routes

    def _sample_popular_trip(self, rng: np.random.Generator) -> tuple[Path, float]:
        weights = np.array([route.weight for route in self.popular_routes])
        weights = weights / weights.sum()
        route = self.popular_routes[int(rng.choice(len(self.popular_routes), p=weights))]
        path = route.path
        # Frequently take a sub-path of the corridor (entering/leaving midway),
        # which is what keeps sub-paths well covered even when a specific long
        # path is held out for ground-truth evaluation.
        if len(path) > 3 and rng.random() < 0.5:
            length = int(rng.integers(max(2, len(path) // 2), len(path)))
            start = int(rng.integers(0, len(path) - length + 1))
            path = Path(path.edge_ids[start : start + length])
        # Departure clusters tightly around the route's busy hour so that a
        # 30-minute interval collects many qualified trajectories.
        departure_hour = route.busy_hour + float(rng.normal(0.0, 0.2))
        departure = (departure_hour % 24.0) * 3600.0
        return path, departure

    def _sample_background_trip(self, rng: np.random.Generator) -> tuple[Path, float] | None:
        parameters = self.parameters
        vertices = [vertex.vertex_id for vertex in self.network.vertices()]
        for _ in range(10):
            source, target = rng.choice(vertices, size=2, replace=False)
            try:
                path = shortest_path(self.network, int(source), int(target))
            except Exception:
                continue
            if not parameters.min_trip_edges <= len(path) <= parameters.max_trip_edges:
                continue
            # Background traffic is spread over the day with mild peak bias.
            if rng.random() < 0.5:
                hour = float(np.clip(rng.normal(rng.choice(parameters.peak_hours), 1.5), 0.0, 23.99))
            else:
                hour = float(rng.uniform(6.0, 23.0))
            return path, hour * 3600.0
        return None

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, n_trajectories: int | None = None) -> list[MatchedTrajectory]:
        """Generate matched trajectories (the primary output of the simulator)."""
        n = self.parameters.n_trajectories if n_trajectories is None else n_trajectories
        if n < 1:
            raise TrajectoryError("n_trajectories must be >= 1")
        rng = self._rng
        trajectories: list[MatchedTrajectory] = []
        trajectory_id = 0
        while len(trajectories) < n:
            if rng.random() < self.parameters.popular_route_fraction:
                path, departure = self._sample_popular_trip(rng)
            else:
                trip = self._sample_background_trip(rng)
                if trip is None:
                    continue
                path, departure = trip
            costs = self.traffic.sample_trip_costs(list(path.edge_ids), departure, rng)
            trajectories.append(
                MatchedTrajectory.from_costs(trajectory_id, path.edge_ids, departure, costs)
            )
            trajectory_id += 1
        return trajectories

    def generate_gps(self, n_trajectories: int) -> tuple[list[Trajectory], list[MatchedTrajectory]]:
        """Generate raw GPS trajectories together with their ground-truth matchings.

        The GPS records are emitted along each edge's straight-line geometry
        at the configured sampling period, with Gaussian positioning noise,
        so the HMM map matcher can be evaluated against known truth.
        """
        matched = self.generate(n_trajectories)
        gps: list[Trajectory] = []
        for trajectory in matched:
            gps.append(self._emit_gps(trajectory))
        return gps, matched

    def _emit_gps(self, matched: MatchedTrajectory, noise_std_m: float = 8.0) -> Trajectory:
        rng = self._rng
        period = self.parameters.sampling_period_s
        records: list[GPSRecord] = []
        for traversal in matched.traversals:
            edge = self.network.edge(traversal.edge_id)
            start = self.network.vertex(edge.source).location
            end = self.network.vertex(edge.target).location
            n_samples = max(2, int(traversal.cost / period) + 1)
            for i in range(n_samples):
                fraction = i / (n_samples - 1) if n_samples > 1 else 0.0
                time_s = traversal.entry_time_s + fraction * traversal.cost
                point = interpolate(start, end, fraction)
                noisy = point.offset(float(rng.normal(0, noise_std_m)), float(rng.normal(0, noise_std_m)))
                speed = edge.length_m / max(traversal.cost, 1e-6)
                records.append(GPSRecord(noisy, time_s, speed))
        # Deduplicate identical timestamps (edge boundaries repeat the instant).
        deduped: list[GPSRecord] = []
        for record in records:
            if deduped and record.time_s <= deduped[-1].time_s:
                continue
            deduped.append(record)
        if len(deduped) < 2:
            deduped = records[:2]
        return Trajectory(matched.trajectory_id, deduped)

    # ------------------------------------------------------------------ #
    # Ground-truth sampling helpers (used by the evaluation harness)
    # ------------------------------------------------------------------ #
    def sample_path_costs(
        self,
        path: Path,
        departure_time_s: float,
        n_samples: int,
        seed: int | None = None,
    ) -> np.ndarray:
        """Draw ``n_samples`` independent per-edge cost vectors for ``path``.

        This bypasses the trajectory population and asks the traffic model
        directly, which is useful for building large ground-truth samples
        on held-out paths.  Returns an array of shape ``(n_samples, |path|)``.
        """
        rng = np.random.default_rng(self.parameters.seed + 1 if seed is None else seed)
        samples = np.empty((n_samples, len(path)))
        for i in range(n_samples):
            samples[i, :] = self.traffic.sample_trip_costs(list(path.edge_ids), departure_time_s, rng)
        return samples
