"""Time-varying, correlated traffic cost model.

This module is the stochastic heart of the data substitute: it decides how
long a simulated vehicle takes to traverse each edge of its trip.  The model
is built so that the phenomena the paper's method exploits are present in
the generated data:

* **Time variation** -- a time-of-day profile slows traffic around morning
  and evening peaks.
* **Complex, multi-modal distributions** -- traffic-signal stops add a
  discrete extra delay with some probability, and congestion episodes add a
  second slow "regime", so per-edge travel times are mixtures rather than
  Gaussians.
* **Dependence along a path** -- a per-trip driver/vehicle factor is shared
  by all edges of the trip, and a first-order autoregressive "local traffic"
  factor links consecutive edges; both create exactly the kind of
  correlation that breaks the legacy convolution baseline.
* **Junction costs** -- an extra turn delay is charged when moving between
  edges, so the cost of a two-edge path is more than the sum of the two
  edge costs observed in isolation; only path-level weights capture this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..config import SimulationParameters
from ..roadnet.graph import Edge, RoadNetwork


@dataclass(frozen=True)
class TimeOfDayProfile:
    """Smooth congestion profile over the day.

    The multiplier is 1 outside peaks and rises to ``1 + peak_slowdown`` at
    the centre of each peak hour (Gaussian-shaped peaks).
    """

    peak_hours: tuple[float, ...] = (8.0, 17.0)
    peak_width_hours: float = 1.5
    peak_slowdown: float = 0.45

    def multiplier(self, time_s: float) -> float:
        """Travel-time multiplier at ``time_s`` seconds after midnight (>= 1)."""
        hour = (time_s / 3600.0) % 24.0
        factor = 0.0
        for peak in self.peak_hours:
            delta = min(abs(hour - peak), 24.0 - abs(hour - peak))
            factor += math.exp(-0.5 * (delta / self.peak_width_hours) ** 2)
        return 1.0 + self.peak_slowdown * min(1.0, factor)


@dataclass
class _EdgeState:
    """Static per-edge latent traffic attributes drawn once per simulation."""

    base_speed_factor: float
    congestion_prone: bool
    has_signal: bool


class TrafficModel:
    """Samples per-edge traversal times for simulated trips."""

    def __init__(
        self,
        network: RoadNetwork,
        parameters: SimulationParameters | None = None,
        seed: int | None = None,
    ) -> None:
        self.network = network
        self.parameters = parameters or SimulationParameters()
        self.profile = TimeOfDayProfile(
            peak_hours=self.parameters.peak_hours,
            peak_width_hours=self.parameters.peak_width_hours,
            peak_slowdown=self.parameters.peak_slowdown,
        )
        seed = self.parameters.seed if seed is None else seed
        self._rng = np.random.default_rng(seed)
        self._edge_states: dict[int, _EdgeState] = {}
        self._draw_edge_states()

    # ------------------------------------------------------------------ #
    def _draw_edge_states(self) -> None:
        parameters = self.parameters
        for edge in self.network.edges():
            base_speed_factor = float(np.clip(self._rng.normal(0.85, 0.08), 0.55, 1.0))
            congestion_prone = bool(self._rng.random() < parameters.congestion_probability)
            # Signals live mostly on non-motorway edges.
            signal_probability = 0.1 if edge.category == "motorway" else parameters.signal_stop_probability
            has_signal = bool(self._rng.random() < signal_probability)
            self._edge_states[edge.edge_id] = _EdgeState(
                base_speed_factor=base_speed_factor,
                congestion_prone=congestion_prone,
                has_signal=has_signal,
            )

    def edge_state(self, edge_id: int) -> _EdgeState:
        """Latent state of an edge (used by tests and diagnostics)."""
        return self._edge_states[edge_id]

    # ------------------------------------------------------------------ #
    def expected_free_flow_time(self, edge: Edge) -> float:
        """Expected traversal time with no congestion, signal or noise."""
        state = self._edge_states[edge.edge_id]
        return edge.free_flow_time_s / state.base_speed_factor

    def sample_trip_costs(
        self,
        edge_ids: list[int],
        departure_time_s: float,
        rng: np.random.Generator,
    ) -> list[float]:
        """Sample correlated traversal costs for one trip along ``edge_ids``.

        Returns one cost (seconds) per edge.  The caller advances the clock
        with the returned costs, so time-of-day effects evolve along the
        trip.
        """
        parameters = self.parameters
        # Per-trip driver/vehicle factor: shared across all edges of the trip.
        driver_factor = float(np.exp(rng.normal(0.0, 0.10)))
        # First-order autoregressive local-traffic factor along the trip.
        rho = parameters.correlation_strength
        local = float(rng.normal(0.0, 1.0))
        clock = float(departure_time_s)
        costs: list[float] = []
        for position, edge_id in enumerate(edge_ids):
            edge = self.network.edge(edge_id)
            state = self._edge_states[edge_id]
            time_factor = self.profile.multiplier(clock)

            congestion_factor = 1.0
            if state.congestion_prone:
                # Congestion bites mostly during peaks, creating a clearly
                # separated second (slow) regime rather than a smooth tail.
                peak_intensity = (time_factor - 1.0) / max(parameters.peak_slowdown, 1e-9)
                if rng.random() < 0.25 + 0.6 * peak_intensity:
                    congestion_factor = 1.0 + parameters.congestion_slowdown * (1.6 + 0.8 * rng.random())

            local = rho * local + math.sqrt(max(0.0, 1.0 - rho * rho)) * float(rng.normal(0.0, 1.0))
            local_factor = float(np.exp(0.08 * local))

            noise_factor = float(np.exp(rng.normal(0.0, parameters.noise_cv)))

            base_time = edge.free_flow_time_s / state.base_speed_factor
            cost = base_time * time_factor * congestion_factor * driver_factor * local_factor * noise_factor

            # Traffic-signal delay on signalised edges.  A red phase adds a
            # roughly fixed wait, which is what makes per-edge travel times
            # multi-modal (the paper's Figure 1(b)).
            if state.has_signal:
                if rng.random() < 0.5:
                    cost += float(
                        rng.uniform(0.8 * parameters.signal_wait_mean_s, 1.6 * parameters.signal_wait_mean_s)
                    )

            cost = max(cost, edge.length_m / (edge.speed_limit_ms * 1.3))
            costs.append(float(cost))
            clock += cost
        return costs

    def speed_limit_distribution_bounds(self, edge: Edge) -> tuple[float, float]:
        """Plausible traversal-time range derived from the speed limit only.

        Used to build fallback unit-path distributions when fewer than beta
        trajectories are available (Section 3.1): the cost is assumed to lie
        between the free-flow time and a conservative congested time.
        """
        free_flow = edge.free_flow_time_s
        return free_flow, free_flow * 2.5 + 10.0
