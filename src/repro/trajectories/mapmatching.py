"""Hidden-Markov-Model map matching (Newson & Krumm, 2009 style).

The paper map-matches its GPS datasets with the well-known HMM method [16]
before any cost learning happens.  This module implements that substrate:

* candidate road edges for each GPS record are the nearest edges within a
  search radius;
* the emission probability of a candidate is Gaussian in the distance from
  the GPS point to its projection onto the edge;
* the transition probability between consecutive candidates decays
  exponentially in the difference between the on-network route distance and
  the straight-line distance between the two GPS points;
* the most likely candidate sequence is recovered with the Viterbi
  algorithm and converted into the traversed edge sequence with entry
  times, i.e. a :class:`~repro.trajectories.matched.MatchedTrajectory`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import MapMatchingError
from ..roadnet.graph import RoadNetwork
from ..roadnet.path import Path
from ..roadnet.routing import dijkstra
from ..roadnet.spatial import Point, project_point_to_segment
from .gps import Trajectory
from .matched import EdgeTraversal, MatchedTrajectory


@dataclass(frozen=True)
class _Candidate:
    """A candidate matching of one GPS record onto one edge."""

    edge_id: int
    distance_m: float
    fraction: float
    projection: Point


class HMMMapMatcher:
    """Matches GPS trajectories onto road-network paths with an HMM."""

    def __init__(
        self,
        network: RoadNetwork,
        gps_noise_std_m: float = 10.0,
        transition_beta_m: float = 50.0,
        search_radius_m: float = 120.0,
        max_candidates: int = 6,
    ) -> None:
        if gps_noise_std_m <= 0 or transition_beta_m <= 0 or search_radius_m <= 0:
            raise MapMatchingError("map matcher scale parameters must be positive")
        self.network = network
        self.gps_noise_std_m = gps_noise_std_m
        self.transition_beta_m = transition_beta_m
        self.search_radius_m = search_radius_m
        self.max_candidates = max_candidates
        self._edge_geometry = {
            edge.edge_id: (
                network.vertex(edge.source).location,
                network.vertex(edge.target).location,
            )
            for edge in network.edges()
        }

    # ------------------------------------------------------------------ #
    # Candidate generation and probabilities
    # ------------------------------------------------------------------ #
    def _candidates(self, point: Point) -> list[_Candidate]:
        candidates: list[_Candidate] = []
        for edge_id, (start, end) in self._edge_geometry.items():
            projection, distance, fraction = project_point_to_segment(point, start, end)
            if distance <= self.search_radius_m:
                candidates.append(_Candidate(edge_id, distance, fraction, projection))
        candidates.sort(key=lambda candidate: candidate.distance_m)
        return candidates[: self.max_candidates]

    def _emission_log_prob(self, candidate: _Candidate) -> float:
        sigma = self.gps_noise_std_m
        return -0.5 * (candidate.distance_m / sigma) ** 2 - math.log(sigma * math.sqrt(2 * math.pi))

    def _route_distance(self, from_candidate: _Candidate, to_candidate: _Candidate) -> float:
        """On-network driving distance between two candidate positions."""
        from_edge = self.network.edge(from_candidate.edge_id)
        to_edge = self.network.edge(to_candidate.edge_id)
        if from_candidate.edge_id == to_candidate.edge_id:
            return abs(to_candidate.fraction - from_candidate.fraction) * from_edge.length_m
        remaining_on_from = (1.0 - from_candidate.fraction) * from_edge.length_m
        onto_to = to_candidate.fraction * to_edge.length_m
        if from_edge.target == to_edge.source:
            return remaining_on_from + onto_to
        distances, _ = dijkstra(
            self.network,
            from_edge.target,
            to_edge.source,
            weight=lambda edge: edge.length_m,
        )
        between = distances.get(to_edge.source)
        if between is None:
            return float("inf")
        return remaining_on_from + between + onto_to

    def _transition_log_prob(
        self,
        from_candidate: _Candidate,
        to_candidate: _Candidate,
        straight_line_m: float,
    ) -> float:
        route = self._route_distance(from_candidate, to_candidate)
        if not math.isfinite(route):
            return -math.inf
        delta = abs(route - straight_line_m)
        return -delta / self.transition_beta_m

    # ------------------------------------------------------------------ #
    # Viterbi decoding
    # ------------------------------------------------------------------ #
    def match(self, trajectory: Trajectory) -> MatchedTrajectory:
        """Match a GPS trajectory to the road network.

        Raises :class:`MapMatchingError` when no record has any candidate
        edge or no connected candidate sequence exists.
        """
        records = trajectory.records
        candidate_lists = [self._candidates(record.location) for record in records]
        kept_indices = [i for i, candidates in enumerate(candidate_lists) if candidates]
        if len(kept_indices) < 2:
            raise MapMatchingError(
                f"trajectory {trajectory.trajectory_id} has too few matchable GPS records"
            )
        records = [records[i] for i in kept_indices]
        candidate_lists = [candidate_lists[i] for i in kept_indices]

        # Viterbi over candidate lattices.
        scores = [np.array([self._emission_log_prob(c) for c in candidate_lists[0]])]
        backpointers: list[np.ndarray] = []
        for step in range(1, len(records)):
            previous_candidates = candidate_lists[step - 1]
            current_candidates = candidate_lists[step]
            straight = records[step - 1].location.distance_to(records[step].location)
            step_scores = np.full(len(current_candidates), -np.inf)
            step_back = np.zeros(len(current_candidates), dtype=int)
            for j, current in enumerate(current_candidates):
                emission = self._emission_log_prob(current)
                best = -np.inf
                best_i = 0
                for i, previous in enumerate(previous_candidates):
                    transition = self._transition_log_prob(previous, current, straight)
                    candidate_score = scores[-1][i] + transition
                    if candidate_score > best:
                        best = candidate_score
                        best_i = i
                step_scores[j] = best + emission
                step_back[j] = best_i
            scores.append(step_scores)
            backpointers.append(step_back)

        if not np.any(np.isfinite(scores[-1])):
            raise MapMatchingError(
                f"trajectory {trajectory.trajectory_id} has no connected candidate sequence"
            )

        # Backtrack the best candidate sequence.
        best_sequence = [int(np.argmax(scores[-1]))]
        for step in range(len(backpointers) - 1, -1, -1):
            best_sequence.append(int(backpointers[step][best_sequence[-1]]))
        best_sequence.reverse()
        chosen = [candidate_lists[i][j] for i, j in enumerate(best_sequence)]

        return self._to_matched_trajectory(trajectory, records, chosen)

    def _to_matched_trajectory(self, trajectory, records, chosen) -> MatchedTrajectory:
        """Convert the decoded candidate sequence into edge traversals."""
        edge_sequence: list[int] = []
        first_seen_time: dict[int, float] = {}
        last_seen_time: dict[int, float] = {}
        for record, candidate in zip(records, chosen):
            edge_id = candidate.edge_id
            if edge_sequence:
                previous = self.network.edge(edge_sequence[-1])
                current = self.network.edge(edge_id)
                # Ignore spurious U-turns caused by GPS jitter near a junction.
                if current.source == previous.target and current.target == previous.source:
                    continue
            if not edge_sequence or edge_sequence[-1] != edge_id:
                # Bridge a gap if the new edge is not adjacent to the previous one.
                if edge_sequence and not self.network.are_adjacent(edge_sequence[-1], edge_id):
                    bridge = self._bridge_edges(edge_sequence[-1], edge_id)
                    for bridge_edge in bridge:
                        if bridge_edge not in edge_sequence:
                            edge_sequence.append(bridge_edge)
                            first_seen_time.setdefault(bridge_edge, record.time_s)
                            last_seen_time[bridge_edge] = record.time_s
                if edge_id in edge_sequence:
                    # Revisiting an earlier edge (GPS jitter near a junction); skip.
                    last_seen_time[edge_id] = record.time_s
                    continue
                edge_sequence.append(edge_id)
            first_seen_time.setdefault(edge_id, record.time_s)
            last_seen_time[edge_id] = record.time_s

        if not edge_sequence:
            raise MapMatchingError(f"trajectory {trajectory.trajectory_id} matched no edges")

        traversals: list[EdgeTraversal] = []
        for index, edge_id in enumerate(edge_sequence):
            entry = first_seen_time[edge_id]
            if index + 1 < len(edge_sequence):
                exit_time = first_seen_time[edge_sequence[index + 1]]
            else:
                exit_time = last_seen_time[edge_id]
            cost = max(exit_time - entry, 0.5)
            traversals.append(EdgeTraversal(edge_id, entry, cost))
        return MatchedTrajectory(trajectory.trajectory_id, traversals)

    def _bridge_edges(self, from_edge_id: int, to_edge_id: int, max_bridge: int = 4) -> list[int]:
        """Shortest edge sequence connecting two non-adjacent matched edges."""
        from_edge = self.network.edge(from_edge_id)
        to_edge = self.network.edge(to_edge_id)
        distances, predecessors = dijkstra(
            self.network, from_edge.target, to_edge.source, weight=lambda edge: edge.length_m
        )
        if to_edge.source not in distances:
            return []
        edge_ids: list[int] = []
        vertex = to_edge.source
        while vertex != from_edge.target:
            edge_id = predecessors.get(vertex)
            if edge_id is None:
                return []
            edge_ids.append(edge_id)
            vertex = self.network.edge(edge_id).source
        edge_ids.reverse()
        return edge_ids[:max_bridge]

    def match_path(self, trajectory: Trajectory) -> Path:
        """Convenience: return just the matched path of a GPS trajectory."""
        return self.match(trajectory).path
