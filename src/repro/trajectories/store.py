"""Trajectory store: indexed access to matched trajectories.

The store answers the queries the hybrid graph instantiation and the
evaluation harness need:

* which trajectories *occurred on* a path (the path is a sub-path of the
  trajectory's path), and with what departure time and per-edge costs;
* which of those are *qualified* for a departure time ``t`` (departed
  within the qualification window of ``t``) or fall into a given
  alpha-interval;
* dataset-level statistics used by the sparseness analysis (Figure 3) and
  the coverage analysis (Figure 8).

Lookups are served from an inverted index mapping each edge to the
``(trajectory, position)`` pairs where that edge occurs, so a path lookup
only scans the trajectories that contain the path's first edge.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import TrajectoryError
from ..roadnet.path import Path
from ..timeutil import TimeInterval, interval_of
from .matched import MatchedTrajectory, PathObservation


class TrajectoryStore:
    """An in-memory, indexed collection of matched trajectories.

    A store may be empty: an ingest-fed deployment starts with no history
    and fills up as vehicles report in (see
    :class:`~repro.trajectories.mutable.MutableTrajectoryStore`).
    """

    def __init__(self, trajectories: Iterable[MatchedTrajectory] = ()) -> None:
        self._trajectories = list(trajectories)
        # Inverted index: edge id -> list of (trajectory index, position in path),
        # ordered by trajectory index.
        self._edge_index: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for trajectory_index, trajectory in enumerate(self._trajectories):
            for position, edge_id in enumerate(trajectory.edge_ids):
                self._edge_index[edge_id].append((trajectory_index, position))

    # ------------------------------------------------------------------ #
    # Basic access
    # ------------------------------------------------------------------ #
    @property
    def trajectories(self) -> list[MatchedTrajectory]:
        return list(self._trajectories)

    def __len__(self) -> int:
        return len(self._trajectories)

    def total_edge_traversals(self) -> int:
        """Total number of edge traversals across all trajectories."""
        return sum(len(trajectory) for trajectory in self._trajectories)

    def covered_edges(self) -> set[int]:
        """Edges traversed by at least one trajectory (the paper's ``E''``)."""
        return set(self._edge_index.keys())

    def without_trajectories(self, trajectory_ids: set[int]) -> "TrajectoryStore":
        """A store excluding the given trajectory ids (used for held-out evaluation)."""
        remaining = [t for t in self._trajectories if t.trajectory_id not in trajectory_ids]
        return TrajectoryStore(remaining)

    def subset(self, fraction: float, seed: int = 0) -> "TrajectoryStore":
        """A store holding a random ``fraction`` of the trajectories.

        A non-empty store yields at least one trajectory; an empty store
        yields an empty subset.
        """
        if not 0.0 < fraction <= 1.0:
            raise TrajectoryError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0 or not self._trajectories:
            return TrajectoryStore(self._trajectories)
        rng = np.random.default_rng(seed)
        count = max(1, int(round(len(self._trajectories) * fraction)))
        indices = rng.choice(len(self._trajectories), size=count, replace=False)
        return TrajectoryStore([self._trajectories[i] for i in sorted(indices)])

    # ------------------------------------------------------------------ #
    # Path-level queries
    # ------------------------------------------------------------------ #
    def observations_on(self, path: Path) -> list[PathObservation]:
        """All observations of trajectories that occurred on ``path``."""
        needle = path.edge_ids
        span = len(needle)
        first_edge = needle[0]
        observations: list[PathObservation] = []
        for trajectory_index, position in self._edge_index.get(first_edge, []):
            trajectory = self._trajectories[trajectory_index]
            own_ids = trajectory.edge_ids
            if position + span <= len(own_ids) and own_ids[position : position + span] == needle:
                observations.append(trajectory.observation_at(position, span))
        return observations

    def count_on(self, path: Path) -> int:
        """Number of trajectories that occurred on ``path`` (any time)."""
        return len(self.observations_on(path))

    def qualified_observations(
        self,
        path: Path,
        departure_time_s: float,
        window_minutes: float = 30.0,
    ) -> list[PathObservation]:
        """Observations on ``path`` departing within ``window_minutes`` of ``departure_time_s``."""
        window_s = window_minutes * 60.0
        return [
            observation
            for observation in self.observations_on(path)
            if abs(observation.departure_time_s - departure_time_s) <= window_s
        ]

    def observations_in_interval(self, path: Path, interval: TimeInterval) -> list[PathObservation]:
        """Observations on ``path`` whose departure time falls in ``interval``."""
        return [
            observation
            for observation in self.observations_on(path)
            if interval.contains(observation.departure_time_s)
        ]

    def observations_by_interval(
        self, path: Path, alpha_minutes: int
    ) -> dict[int, list[PathObservation]]:
        """Observations on ``path`` grouped by their alpha-interval index."""
        grouped: dict[int, list[PathObservation]] = defaultdict(list)
        for observation in self.observations_on(path):
            grouped[interval_of(observation.departure_time_s, alpha_minutes).index].append(observation)
        return dict(grouped)

    # ------------------------------------------------------------------ #
    # Dataset-level statistics
    # ------------------------------------------------------------------ #
    def unit_paths(self) -> list[Path]:
        """All unit paths (single edges) that appear in at least one trajectory."""
        return [Path([edge_id]) for edge_id in sorted(self._edge_index.keys())]

    def frequent_subpath_counts(
        self,
        cardinality: int,
        min_count: int = 1,
    ) -> dict[tuple[int, ...], int]:
        """Counts of trajectories per sub-path of the given ``cardinality``.

        Only sub-paths reaching ``min_count`` are returned.  Used by the
        sparseness analysis and as seed candidates for instantiation.
        """
        if cardinality < 1:
            raise TrajectoryError("cardinality must be >= 1")
        counts: dict[tuple[int, ...], int] = defaultdict(int)
        for trajectory in self._trajectories:
            edge_ids = trajectory.edge_ids
            seen_in_trajectory: set[tuple[int, ...]] = set()
            for start in range(len(edge_ids) - cardinality + 1):
                key = edge_ids[start : start + cardinality]
                if key not in seen_in_trajectory:
                    seen_in_trajectory.add(key)
                    counts[key] += 1
        return {key: count for key, count in counts.items() if count >= min_count}

    def max_trajectories_by_cardinality(self, max_cardinality: int) -> dict[int, int]:
        """Maximum number of trajectories on any path, per path cardinality (Figure 3)."""
        result: dict[int, int] = {}
        for cardinality in range(1, max_cardinality + 1):
            counts = self.frequent_subpath_counts(cardinality)
            result[cardinality] = max(counts.values()) if counts else 0
        return result

    def paths_with_min_support(
        self,
        cardinality: int,
        min_count: int,
    ) -> list[Path]:
        """Paths of the given cardinality traversed by at least ``min_count`` trajectories."""
        counts = self.frequent_subpath_counts(cardinality, min_count=min_count)
        return [Path(edge_ids) for edge_ids in counts]

    def merge(self, other: "TrajectoryStore") -> "TrajectoryStore":
        """A store holding the union of both stores' trajectories."""
        return TrajectoryStore(list(self._trajectories) + list(other._trajectories))

    def stats(self) -> dict[str, int]:
        """Summary counters of the store's contents.

        Used by operators and by the persistence round-trip tests: two
        stores with equal stats (and equal per-trajectory payloads) are
        interchangeable for instantiation and evaluation.  Handles empty
        stores (all zeros).
        """
        return {
            "n_trajectories": len(self._trajectories),
            "total_edge_traversals": self.total_edge_traversals(),
            "n_covered_edges": len(self._edge_index),
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"TrajectoryStore({len(self._trajectories)} trajectories, "
            f"{len(self._edge_index)} covered edges)"
        )
