"""GPS-level trajectory representation.

A trajectory is a time-ordered sequence of ``(location, time)`` GPS records
pertaining to one trip (Section 2.1).  The map matcher consumes this
representation; the rest of the library works with the edge-level
:class:`~repro.trajectories.matched.MatchedTrajectory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..exceptions import TrajectoryError
from ..roadnet.spatial import Point


@dataclass(frozen=True)
class GPSRecord:
    """One GPS fix: a planar location, a timestamp, and an optional speed."""

    location: Point
    time_s: float
    speed_ms: float | None = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise TrajectoryError(f"GPS timestamps must be non-negative, got {self.time_s}")


class Trajectory:
    """A time-ordered sequence of GPS records for a single trip."""

    __slots__ = ("trajectory_id", "_records")

    def __init__(self, trajectory_id: int, records: Iterable[GPSRecord]) -> None:
        records = tuple(records)
        if len(records) < 2:
            raise TrajectoryError("a trajectory needs at least two GPS records")
        for earlier, later in zip(records[:-1], records[1:]):
            if later.time_s <= earlier.time_s:
                raise TrajectoryError("GPS records must be strictly increasing in time")
        self.trajectory_id = trajectory_id
        self._records = records

    @property
    def records(self) -> tuple[GPSRecord, ...]:
        return self._records

    @property
    def start_time_s(self) -> float:
        return self._records[0].time_s

    @property
    def end_time_s(self) -> float:
        return self._records[-1].time_s

    @property
    def duration_s(self) -> float:
        return self.end_time_s - self.start_time_s

    def locations(self) -> list[Point]:
        return [record.location for record in self._records]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[GPSRecord]:
        return iter(self._records)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Trajectory({self.trajectory_id}, {len(self._records)} records, "
            f"{self.start_time_s:.0f}s..{self.end_time_s:.0f}s)"
        )


def resample(trajectory: Trajectory, period_s: float) -> Trajectory:
    """Downsample a trajectory to roughly one record every ``period_s`` seconds."""
    if period_s <= 0:
        raise TrajectoryError("period_s must be positive")
    kept: list[GPSRecord] = [trajectory.records[0]]
    for record in trajectory.records[1:-1]:
        if record.time_s - kept[-1].time_s >= period_s:
            kept.append(record)
    kept.append(trajectory.records[-1])
    return Trajectory(trajectory.trajectory_id, kept)
