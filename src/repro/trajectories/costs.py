"""Travel-cost extraction from matched trajectories.

The paper considers two time-varying, uncertain travel costs: travel time
and greenhouse-gas (GHG) emissions.  Travel time is the difference between
the last and the first GPS timestamp on the path, which in the matched
representation is simply the sum of per-edge traversal costs.  GHG
emissions are computed with a simple speed-based vehicular environmental
impact model (in the spirit of EcoMark / VT-micro aggregate models): fuel
use per metre rises both at very low (stop-and-go) and at very high speeds,
with a minimum around 60-70 km/h.
"""

from __future__ import annotations

from ..exceptions import TrajectoryError
from ..roadnet.graph import RoadNetwork
from ..roadnet.path import Path
from .matched import MatchedTrajectory, PathObservation

#: Grams of CO2-equivalent per litre of petrol burnt.
GRAMS_CO2_PER_LITRE = 2392.0


def travel_time_s(observation: PathObservation | MatchedTrajectory) -> float:
    """Travel time of a path observation or a whole matched trajectory."""
    return observation.total_cost


def _fuel_litres_per_100km(speed_kmh: float) -> float:
    """Aggregate fuel-consumption curve (litres per 100 km) as a function of speed."""
    speed_kmh = max(5.0, min(speed_kmh, 130.0))
    # U-shaped consumption curve with its minimum near 65 km/h.
    return 4.5 + 0.0023 * (speed_kmh - 65.0) ** 2 + 90.0 / speed_kmh


def ghg_emissions_g(
    observation: PathObservation | MatchedTrajectory,
    network: RoadNetwork,
) -> float:
    """CO2-equivalent emissions (grams) of one traversal.

    Each edge's emission is derived from its average traversal speed via the
    aggregate fuel-consumption curve; an idling penalty is added for time
    spent below a crawling speed (signal waits).
    """
    if isinstance(observation, MatchedTrajectory):
        edge_ids = observation.edge_ids
        edge_costs = observation.edge_costs
    else:
        edge_ids = observation.path.edge_ids
        edge_costs = observation.edge_costs
    if len(edge_ids) != len(edge_costs):
        raise TrajectoryError("observation edge ids and costs are inconsistent")

    total_grams = 0.0
    for edge_id, cost_s in zip(edge_ids, edge_costs):
        edge = network.edge(edge_id)
        cost_s = max(cost_s, 1e-3)
        average_speed_ms = edge.length_m / cost_s
        average_speed_kmh = average_speed_ms * 3.6
        litres = _fuel_litres_per_100km(average_speed_kmh) * (edge.length_m / 1000.0) / 100.0
        # Idling component: time spent beyond twice the free-flow time is
        # treated as stationary idling at ~0.8 l/h.
        idle_seconds = max(0.0, cost_s - 2.0 * edge.free_flow_time_s)
        litres += 0.8 * idle_seconds / 3600.0
        total_grams += litres * GRAMS_CO2_PER_LITRE
    return total_grams


def path_ghg_costs(
    trajectory: MatchedTrajectory,
    path: Path,
    network: RoadNetwork,
) -> float | None:
    """GHG emissions of ``trajectory`` on ``path``, or ``None`` if it did not occur on it."""
    observation = trajectory.observation_on(path)
    if observation is None:
        return None
    return ghg_emissions_g(observation, network)
