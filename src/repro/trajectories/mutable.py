"""Mutable trajectory store: incremental appends with versioned snapshots.

:class:`~repro.trajectories.store.TrajectoryStore` is a build-once snapshot;
the streaming ingest subsystem (:mod:`repro.ingest`) needs a store that
grows as vehicles report in.  :class:`MutableTrajectoryStore` adds:

* **incremental appends** -- :meth:`~MutableTrajectoryStore.append` extends
  the trajectory list and the inverted index in ``O(|trajectory|)``; the
  index is never rebuilt;
* **versioned snapshots** -- :meth:`~MutableTrajectoryStore.snapshot`
  returns an ``O(1)`` read-only view pinned to the store's state at
  snapshot time.  Appends only ever *extend* the underlying list and
  posting lists, so a snapshot stays internally consistent while writers
  keep appending -- the same structural-sharing trick log-structured
  storage engines use for consistent reads under ingest;
* a **dirty edge set** per append: the edges the new trajectory traversed,
  which is exactly the set of cache entries the estimation service must
  invalidate (any path whose distribution could have changed contains at
  least one of them).

Reads on the live store are safe from the writing thread; concurrent
readers in other threads should read through :meth:`snapshot`.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from itertools import takewhile
from typing import Iterable, Iterator

from ..exceptions import TrajectoryError
from .matched import MatchedTrajectory
from .store import TrajectoryStore


class _BoundedSequence(Sequence):
    """The first ``count`` items of a list that only ever grows.

    Shares the live list: because appends never mutate existing slots, the
    prefix ``[0, count)`` is immutable and the view is consistent forever.
    """

    __slots__ = ("_items", "_count")

    def __init__(self, items: list, count: int) -> None:
        self._items = items
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._count)
            return [self._items[i] for i in range(start, stop, step)]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"index {index} out of range for snapshot of {self._count}")
        return self._items[index]

    def __iter__(self) -> Iterator:
        for i in range(self._count):
            yield self._items[i]

    def __add__(self, other):
        return list(self) + list(other)

    def __radd__(self, other):
        return list(other) + list(self)


class _BoundedIndex:
    """A view of the live inverted index restricted to trajectories ``< count``.

    Posting lists are ordered by trajectory index (appends preserve this),
    so the restriction is a prefix -- computed lazily with ``takewhile``.
    ``edge_order`` lists edge ids in first-appearance order; the first
    ``n_edges`` of them are exactly the edges covered by the snapshot.
    """

    __slots__ = ("_index", "_edge_order", "_n_edges", "_count")

    def __init__(
        self,
        index: dict[int, list[tuple[int, int]]],
        edge_order: list[int],
        n_edges: int,
        count: int,
    ) -> None:
        self._index = index
        self._edge_order = edge_order
        self._n_edges = n_edges
        self._count = count

    def get(self, key: int, default=None):
        postings = self._index.get(key)
        if postings is None:
            return default
        bounded = list(takewhile(lambda posting: posting[0] < self._count, postings))
        return bounded if bounded else default

    def keys(self) -> list[int]:
        return [self._edge_order[i] for i in range(self._n_edges)]

    def __len__(self) -> int:
        return self._n_edges

    def __contains__(self, key: int) -> bool:
        postings = self._index.get(key)
        return bool(postings) and postings[0][0] < self._count


class TrajectorySnapshot(TrajectoryStore):
    """A consistent, read-only view of a :class:`MutableTrajectoryStore`.

    Construction is ``O(1)``: the snapshot shares the parent's trajectory
    list and inverted index, bounded to the first ``len(self)``
    trajectories.  It supports the full read API of
    :class:`~repro.trajectories.store.TrajectoryStore` (path queries,
    statistics, ``subset`` / ``merge`` / ``without_trajectories``, hybrid
    graph instantiation) and stays valid while the parent keeps appending.
    """

    def __init__(self, parent: "MutableTrajectoryStore", count: int, n_edges: int, version: int) -> None:
        # Deliberately does NOT call TrajectoryStore.__init__: the whole
        # point is to share the parent's index instead of rebuilding it.
        self._trajectories = _BoundedSequence(parent._trajectories, count)
        self._edge_index = _BoundedIndex(parent._edge_index, parent._edge_order, n_edges, count)
        self._version = version

    @property
    def version(self) -> int:
        """The parent store's version at snapshot time."""
        return self._version

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"TrajectorySnapshot(version={self._version}, "
            f"{len(self._trajectories)} trajectories, {len(self._edge_index)} covered edges)"
        )


class MutableTrajectoryStore(TrajectoryStore):
    """A trajectory store that accepts appends after construction.

    Appends maintain the inverted index incrementally (``O(|trajectory|)``
    per append, independent of store size) and bump a monotonically
    increasing :attr:`version`.  :meth:`snapshot` pins the current version
    for in-flight queries; :meth:`append` returns the edge-level dirty set
    the ingest pipeline feeds into targeted cache invalidation.
    """

    def __init__(self, trajectories: Iterable[MatchedTrajectory] = ()) -> None:
        super().__init__(trajectories)
        # Edge ids in first-appearance order; parallel to the index keys.
        self._edge_order: list[int] = list(self._edge_index.keys())
        self._append_lock = threading.Lock()
        self._version = len(self._trajectories)

    @property
    def version(self) -> int:
        """Monotonic version counter; always equals the trajectory count.

        Seeded with the initial count and bumped once per append, so the
        invariant ``version == len(store)`` holds for the store's whole
        life.  The persistence layer (:mod:`repro.persist`) relies on it:
        snapshots are epoch-tagged with the version, and a
        ``MutableTrajectoryStore`` rebuilt from a restored snapshot
        resumes at exactly the snapshot's epoch -- delta segments line up
        without any separate epoch bookkeeping.
        """
        with self._append_lock:
            return self._version

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def append(self, trajectory: MatchedTrajectory) -> set[int]:
        """Add one matched trajectory; return the edges it touched.

        The returned *dirty set* is the set of edge ids whose cost evidence
        changed: every path whose distribution the new trajectory can
        affect contains at least one of them.
        """
        if not isinstance(trajectory, MatchedTrajectory):
            raise TrajectoryError(
                f"can only append MatchedTrajectory, got {type(trajectory).__name__}"
            )
        with self._append_lock:
            trajectory_index = len(self._trajectories)
            # Publish the trajectory before its postings so a concurrent
            # snapshot/index reader never sees a dangling trajectory index.
            self._trajectories.append(trajectory)
            dirty: set[int] = set()
            for position, edge_id in enumerate(trajectory.edge_ids):
                if edge_id not in self._edge_index:
                    self._edge_order.append(edge_id)
                self._edge_index[edge_id].append((trajectory_index, position))
                dirty.add(edge_id)
            self._version += 1
            return dirty

    def append_many(self, trajectories: Iterable[MatchedTrajectory]) -> set[int]:
        """Append a batch; return the union of the per-trajectory dirty sets."""
        dirty: set[int] = set()
        for trajectory in trajectories:
            dirty |= self.append(trajectory)
        return dirty

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def snapshot(self) -> TrajectorySnapshot:
        """An ``O(1)`` consistent view of the store as of now.

        The snapshot keeps answering queries over exactly the trajectories
        present at snapshot time, no matter how many appends happen later.
        """
        with self._append_lock:
            return TrajectorySnapshot(
                self, len(self._trajectories), len(self._edge_order), self._version
            )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MutableTrajectoryStore(version={self._version}, "
            f"{len(self._trajectories)} trajectories, {len(self._edge_index)} covered edges)"
        )
