"""Planar / geodesic geometry helpers used by the road network and map matcher.

The synthetic networks use a local planar coordinate system expressed in
metres, but the module also provides a haversine distance so real
latitude/longitude data (e.g. an OpenStreetMap export) can be plugged in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True)
class Point:
    """A planar point in metres (or a lon/lat pair when used geodesically)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in the planar coordinate system."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Planar midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def offset(self, dx: float, dy: float) -> "Point":
        """Return a new point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in metres between two lon/lat points (degrees)."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def project_point_to_segment(p: Point, a: Point, b: Point) -> tuple[Point, float, float]:
    """Project point ``p`` onto segment ``a``-``b``.

    Returns
    -------
    (projection, distance, fraction):
        ``projection`` is the closest point on the segment, ``distance`` is
        the Euclidean distance from ``p`` to that point, and ``fraction`` in
        ``[0, 1]`` is how far along the segment (from ``a``) the projection
        lies.
    """
    ax, ay = a.x, a.y
    bx, by = b.x, b.y
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return a, p.distance_to(a), 0.0
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    proj = Point(ax + t * dx, ay + t * dy)
    return proj, p.distance_to(proj), t


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Linear interpolation between ``a`` and ``b`` at ``fraction`` in [0, 1]."""
    fraction = max(0.0, min(1.0, fraction))
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)


def polyline_length(points: list[Point]) -> float:
    """Total length of a planar polyline."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))
