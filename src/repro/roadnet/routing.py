"""Deterministic routing algorithms over the road network.

These are substrate algorithms: the stochastic routing subsystem and the
evaluation workload generators need deterministic shortest paths (Dijkstra
and A*), alternative paths (Yen's k-shortest paths), and random simple
paths for sampling query workloads and trip itineraries.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from ..exceptions import RoutingError
from .graph import Edge, RoadNetwork
from .path import Path

EdgeWeight = Callable[[Edge], float]


def _free_flow_weight(edge: Edge) -> float:
    return edge.free_flow_time_s


def dijkstra(
    network: RoadNetwork,
    source: int,
    target: int | None = None,
    weight: EdgeWeight | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest path distances and predecessor edges.

    Returns ``(distances, predecessor_edge)`` where ``predecessor_edge[v]``
    is the edge id used to reach vertex ``v``.  If ``target`` is given the
    search stops early once the target is settled.
    """
    weight = weight or _free_flow_weight
    distances: dict[int, float] = {source: 0.0}
    predecessor: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if target is not None and vertex == target:
            break
        for edge in network.out_edges(vertex):
            candidate = dist + weight(edge)
            if candidate < distances.get(edge.target, float("inf")):
                distances[edge.target] = candidate
                predecessor[edge.target] = edge.edge_id
                heapq.heappush(heap, (candidate, edge.target))
    return distances, predecessor


def _reconstruct(network: RoadNetwork, predecessor: dict[int, int], source: int, target: int) -> Path:
    edge_ids: list[int] = []
    vertex = target
    while vertex != source:
        edge_id = predecessor.get(vertex)
        if edge_id is None:
            raise RoutingError(f"no path from {source} to {target}")
        edge_ids.append(edge_id)
        vertex = network.edge(edge_id).source
    edge_ids.reverse()
    return Path(edge_ids)


def shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: EdgeWeight | None = None,
) -> Path:
    """Shortest path from ``source`` to ``target`` under ``weight`` (default: free-flow time)."""
    if source == target:
        raise RoutingError("source and target must differ")
    _, predecessor = dijkstra(network, source, target, weight)
    return _reconstruct(network, predecessor, source, target)


def astar_path(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: EdgeWeight | None = None,
    max_speed_kmh: float = 110.0,
) -> Path:
    """A* shortest path using a straight-line / max-speed admissible heuristic."""
    if source == target:
        raise RoutingError("source and target must differ")
    weight = weight or _free_flow_weight
    goal = network.vertex(target).location
    max_speed_ms = max_speed_kmh / 3.6

    def heuristic(vertex_id: int) -> float:
        return network.vertex(vertex_id).location.distance_to(goal) / max_speed_ms

    g_score: dict[int, float] = {source: 0.0}
    predecessor: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    while heap:
        _, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if vertex == target:
            return _reconstruct(network, predecessor, source, target)
        for edge in network.out_edges(vertex):
            candidate = g_score[vertex] + weight(edge)
            if candidate < g_score.get(edge.target, float("inf")):
                g_score[edge.target] = candidate
                predecessor[edge.target] = edge.edge_id
                heapq.heappush(heap, (candidate + heuristic(edge.target), edge.target))
    raise RoutingError(f"no path from {source} to {target}")


def k_shortest_paths(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    weight: EdgeWeight | None = None,
) -> list[Path]:
    """Yen's algorithm for the ``k`` loopless shortest paths.

    Used by the evaluation harness to build sets of alternative candidate
    paths (the "given candidate paths" scenario of Section 4.3).
    """
    if k < 1:
        raise RoutingError("k must be >= 1")
    weight = weight or _free_flow_weight

    def path_cost(path: Path) -> float:
        return sum(weight(network.edge(edge_id)) for edge_id in path)

    try:
        first = shortest_path(network, source, target, weight)
    except RoutingError:
        return []
    accepted: list[Path] = [first]
    candidates: list[tuple[float, tuple[int, ...]]] = []
    seen_candidates: set[tuple[int, ...]] = set()

    while len(accepted) < k:
        previous = accepted[-1]
        prev_vertices = previous.vertex_sequence(network)
        for i in range(len(previous)):
            spur_vertex = prev_vertices[i]
            root_edge_ids = previous.edge_ids[:i]
            removed_edges: set[int] = set()
            removed_vertices: set[int] = set(prev_vertices[:i])

            for accepted_path in accepted:
                if accepted_path.edge_ids[:i] == root_edge_ids and len(accepted_path) > i:
                    removed_edges.add(accepted_path.edge_ids[i])

            def spur_weight(edge: Edge) -> float:
                if edge.edge_id in removed_edges:
                    return float("inf")
                if edge.source in removed_vertices or edge.target in removed_vertices:
                    return float("inf")
                return weight(edge)

            try:
                spur = shortest_path(network, spur_vertex, target, spur_weight)
            except RoutingError:
                continue
            if path_cost(spur) == float("inf"):
                continue
            total_ids = root_edge_ids + spur.edge_ids
            if len(set(total_ids)) != len(total_ids):
                continue
            try:
                total = Path.from_edges(network, total_ids)
            except Exception:
                continue
            key = total.edge_ids
            if key in seen_candidates or total in accepted:
                continue
            seen_candidates.add(key)
            heapq.heappush(candidates, (path_cost(total), key))
        if not candidates:
            break
        _, best_ids = heapq.heappop(candidates)
        accepted.append(Path(best_ids))
    return accepted


def random_path(
    network: RoadNetwork,
    n_edges: int,
    rng: np.random.Generator,
    start_edge_id: int | None = None,
    max_attempts: int = 200,
) -> Path | None:
    """Sample a random simple path with exactly ``n_edges`` edges.

    The walk prefers continuing along the same road category (so simulated
    trips look like real itineraries rather than random zig-zags).  Returns
    ``None`` when no such path is found within ``max_attempts`` restarts.
    """
    if n_edges < 1:
        raise RoutingError("n_edges must be >= 1")
    edge_ids = [edge.edge_id for edge in network.edges()]
    if not edge_ids:
        return None
    for _ in range(max_attempts):
        if start_edge_id is not None:
            current = network.edge(start_edge_id)
        else:
            current = network.edge(int(rng.choice(edge_ids)))
        chosen = [current.edge_id]
        visited_vertices = {current.source, current.target}
        while len(chosen) < n_edges:
            successors = [
                edge
                for edge in network.successors_of_edge(chosen[-1])
                if edge.target not in visited_vertices
            ]
            if not successors:
                break
            weights = np.array(
                [3.0 if edge.category == network.edge(chosen[-1]).category else 1.0 for edge in successors]
            )
            weights = weights / weights.sum()
            nxt = successors[int(rng.choice(len(successors), p=weights))]
            chosen.append(nxt.edge_id)
            visited_vertices.add(nxt.target)
        if len(chosen) == n_edges:
            return Path(chosen)
    return None
