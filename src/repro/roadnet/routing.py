"""Deterministic routing algorithms over the road network.

These are substrate algorithms: the stochastic routing subsystem and the
evaluation workload generators need deterministic shortest paths (Dijkstra
and A*), alternative paths (Yen's k-shortest paths), and random simple
paths for sampling query workloads and trip itineraries.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from typing import Callable

import numpy as np

from ..exceptions import RoutingError
from .graph import Edge, RoadNetwork
from .path import Path

EdgeWeight = Callable[[Edge], float]


def _free_flow_weight(edge: Edge) -> float:
    return edge.free_flow_time_s


def _relax_loop(
    start: int,
    edges_of: Callable[[int], list[Edge]],
    neighbor_of: Callable[[Edge], int],
    weight: EdgeWeight,
    target: int | None = None,
    predecessor: dict[int, int] | None = None,
) -> dict[int, float]:
    """The shared Dijkstra relaxation loop (forward and reverse searches).

    ``edges_of`` / ``neighbor_of`` select the adjacency direction; the
    optional ``predecessor`` dict is filled with the edge id used to reach
    each settled vertex; ``target`` stops the search early once settled.
    """
    distances: dict[int, float] = {start: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, start)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if target is not None and vertex == target:
            break
        for edge in edges_of(vertex):
            neighbor = neighbor_of(edge)
            candidate = dist + weight(edge)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                if predecessor is not None:
                    predecessor[neighbor] = edge.edge_id
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def dijkstra(
    network: RoadNetwork,
    source: int,
    target: int | None = None,
    weight: EdgeWeight | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest path distances and predecessor edges.

    Returns ``(distances, predecessor_edge)`` where ``predecessor_edge[v]``
    is the edge id used to reach vertex ``v``.  If ``target`` is given the
    search stops early once the target is settled.
    """
    predecessor: dict[int, int] = {}
    distances = _relax_loop(
        source,
        network.out_edges,
        lambda edge: edge.target,
        weight or _free_flow_weight,
        target=target,
        predecessor=predecessor,
    )
    return distances, predecessor


def reverse_dijkstra(
    network: RoadNetwork,
    target: int,
    weight: EdgeWeight | None = None,
) -> dict[int, float]:
    """Shortest-path distance from every vertex *to* ``target``.

    Runs Dijkstra over the incoming-edge adjacency directly, so no reversed
    copy of the network is ever materialised.  The result maps each vertex
    that can reach ``target`` to its distance (``target`` itself maps to
    ``0.0``); unreachable vertices are absent.
    """
    network.vertex(target)  # fail fast on an unknown target
    return _relax_loop(
        target, network.in_edges, lambda edge: edge.source, weight or _free_flow_weight
    )


class ReverseBoundsIndex:
    """Per-target lower bounds on the cost to reach a target, computed once.

    Stochastic routers prune candidate paths with an optimistic (free-flow)
    estimate of the remaining distance to the target.  Computing those
    bounds used to mean rebuilding a reversed copy of the whole road
    network on *every* query; this index runs a reverse Dijkstra straight
    over ``network.in_edges`` and memoises the resulting bounds per target,
    so repeated queries to the same target -- the common case for a
    routing service -- pay the sweep exactly once.

    The index is bounded: at most ``max_targets`` targets are kept, evicted
    least-recently-used, so a service fronting millions of users keeps a
    flat memory footprint.  ``n_computes`` counts the Dijkstra sweeps
    actually run (the regression tests pin "a second query to the same
    target does no recompute" on it).

    The index assumes a **frozen topology**: bounds depend only on the
    network's vertices, edges and free-flow weights, all of which are
    fixed once routing starts everywhere in this library.  If a network
    *is* mutated in place (``add_vertex`` / ``add_edge`` after the index
    exists), call :meth:`clear` -- cached bounds would otherwise miss the
    new connectivity and over-prune.
    """

    def __init__(
        self,
        network: RoadNetwork,
        weight: EdgeWeight | None = None,
        max_targets: int = 256,
    ) -> None:
        if max_targets < 1:
            raise RoutingError(f"max_targets must be >= 1, got {max_targets}")
        self.network = network
        self._weight = weight
        self._max_targets = max_targets
        self._bounds: OrderedDict[int, dict[int, float]] = OrderedDict()
        # The index is shared by every route query of a service, whose
        # batch executor may serve queries from worker threads.
        self._lock = threading.Lock()
        #: Number of reverse-Dijkstra sweeps actually computed (cache misses).
        self.n_computes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._bounds)

    def bounds_to(self, target: int) -> dict[int, float]:
        """Lower-bound cost from every vertex to ``target`` (cached)."""
        with self._lock:
            cached = self._bounds.get(target)
            if cached is not None:
                self._bounds.move_to_end(target)
                return cached
        # Run the sweep outside the lock so concurrent queries to *other*
        # targets are not serialised behind it; a racing duplicate compute
        # for the same target is harmless (last insert wins, same values).
        bounds = reverse_dijkstra(self.network, target, self._weight)
        with self._lock:
            self.n_computes += 1
            if target not in self._bounds and len(self._bounds) >= self._max_targets:
                self._bounds.popitem(last=False)
            self._bounds[target] = bounds
            self._bounds.move_to_end(target)
        return bounds

    def clear(self) -> None:
        """Drop all cached bounds (e.g. after the network itself changed)."""
        with self._lock:
            self._bounds.clear()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ReverseBoundsIndex({self.network.name!r}, targets={len(self._bounds)}, "
            f"computes={self.n_computes})"
        )


def _reconstruct(network: RoadNetwork, predecessor: dict[int, int], source: int, target: int) -> Path:
    edge_ids: list[int] = []
    vertex = target
    while vertex != source:
        edge_id = predecessor.get(vertex)
        if edge_id is None:
            raise RoutingError(f"no path from {source} to {target}")
        edge_ids.append(edge_id)
        vertex = network.edge(edge_id).source
    edge_ids.reverse()
    return Path(edge_ids)


def shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: EdgeWeight | None = None,
) -> Path:
    """Shortest path from ``source`` to ``target`` under ``weight`` (default: free-flow time)."""
    if source == target:
        raise RoutingError("source and target must differ")
    _, predecessor = dijkstra(network, source, target, weight)
    return _reconstruct(network, predecessor, source, target)


def astar_path(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: EdgeWeight | None = None,
    max_speed_kmh: float = 110.0,
) -> Path:
    """A* shortest path using a straight-line / max-speed admissible heuristic."""
    if source == target:
        raise RoutingError("source and target must differ")
    weight = weight or _free_flow_weight
    goal = network.vertex(target).location
    max_speed_ms = max_speed_kmh / 3.6

    def heuristic(vertex_id: int) -> float:
        return network.vertex(vertex_id).location.distance_to(goal) / max_speed_ms

    g_score: dict[int, float] = {source: 0.0}
    predecessor: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    while heap:
        _, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if vertex == target:
            return _reconstruct(network, predecessor, source, target)
        for edge in network.out_edges(vertex):
            candidate = g_score[vertex] + weight(edge)
            if candidate < g_score.get(edge.target, float("inf")):
                g_score[edge.target] = candidate
                predecessor[edge.target] = edge.edge_id
                heapq.heappush(heap, (candidate + heuristic(edge.target), edge.target))
    raise RoutingError(f"no path from {source} to {target}")


def k_shortest_paths(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    weight: EdgeWeight | None = None,
) -> list[Path]:
    """Yen's algorithm for the ``k`` loopless shortest paths.

    Used by the evaluation harness to build sets of alternative candidate
    paths (the "given candidate paths" scenario of Section 4.3).
    """
    if k < 1:
        raise RoutingError("k must be >= 1")
    weight = weight or _free_flow_weight

    def path_cost(path: Path) -> float:
        return sum(weight(network.edge(edge_id)) for edge_id in path)

    try:
        first = shortest_path(network, source, target, weight)
    except RoutingError:
        return []
    accepted: list[Path] = [first]
    candidates: list[tuple[float, tuple[int, ...]]] = []
    seen_candidates: set[tuple[int, ...]] = set()

    while len(accepted) < k:
        previous = accepted[-1]
        prev_vertices = previous.vertex_sequence(network)
        for i in range(len(previous)):
            spur_vertex = prev_vertices[i]
            root_edge_ids = previous.edge_ids[:i]
            removed_edges: set[int] = set()
            removed_vertices: set[int] = set(prev_vertices[:i])

            for accepted_path in accepted:
                if accepted_path.edge_ids[:i] == root_edge_ids and len(accepted_path) > i:
                    removed_edges.add(accepted_path.edge_ids[i])

            def spur_weight(edge: Edge) -> float:
                if edge.edge_id in removed_edges:
                    return float("inf")
                if edge.source in removed_vertices or edge.target in removed_vertices:
                    return float("inf")
                return weight(edge)

            try:
                spur = shortest_path(network, spur_vertex, target, spur_weight)
            except RoutingError:
                continue
            if path_cost(spur) == float("inf"):
                continue
            total_ids = root_edge_ids + spur.edge_ids
            if len(set(total_ids)) != len(total_ids):
                continue
            try:
                total = Path.from_edges(network, total_ids)
            except Exception:
                continue
            key = total.edge_ids
            if key in seen_candidates or total in accepted:
                continue
            seen_candidates.add(key)
            heapq.heappush(candidates, (path_cost(total), key))
        if not candidates:
            break
        _, best_ids = heapq.heappop(candidates)
        accepted.append(Path(best_ids))
    return accepted


def random_path(
    network: RoadNetwork,
    n_edges: int,
    rng: np.random.Generator,
    start_edge_id: int | None = None,
    max_attempts: int = 200,
) -> Path | None:
    """Sample a random simple path with exactly ``n_edges`` edges.

    The walk prefers continuing along the same road category (so simulated
    trips look like real itineraries rather than random zig-zags).  Returns
    ``None`` when no such path is found within ``max_attempts`` restarts.
    """
    if n_edges < 1:
        raise RoutingError("n_edges must be >= 1")
    edge_ids = [edge.edge_id for edge in network.edges()]
    if not edge_ids:
        return None
    for _ in range(max_attempts):
        if start_edge_id is not None:
            current = network.edge(start_edge_id)
        else:
            current = network.edge(int(rng.choice(edge_ids)))
        chosen = [current.edge_id]
        visited_vertices = {current.source, current.target}
        while len(chosen) < n_edges:
            successors = [
                edge
                for edge in network.successors_of_edge(chosen[-1])
                if edge.target not in visited_vertices
            ]
            if not successors:
                break
            weights = np.array(
                [3.0 if edge.category == network.edge(chosen[-1]).category else 1.0 for edge in successors]
            )
            weights = weights / weights.sum()
            nxt = successors[int(rng.choice(len(successors), p=weights))]
            chosen.append(nxt.edge_id)
            visited_vertices.add(nxt.target)
        if len(chosen) == n_edges:
            return Path(chosen)
    return None
