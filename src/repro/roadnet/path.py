"""Path algebra over road-network edges.

A path ``P = <e1, e2, ..., eA>`` is a sequence of adjacent edges connecting
distinct vertices (Section 2.1).  The hybrid graph reasons about paths
purely through their edge-id sequences, so :class:`Path` is a lightweight,
hashable, immutable wrapper around a tuple of edge ids with the operations
the paper uses:

* sub-path test (contiguous subsequence),
* intersection ``Pi ∩ Pj`` (the shared sub-path),
* difference ``Pi \\ Pj`` (the part of ``Pi`` outside ``Pj``),
* concatenation and extension by one edge ("path + another edge").

Validation against a concrete :class:`~repro.roadnet.graph.RoadNetwork`
(adjacency of consecutive edges, distinct vertices) is available through
:meth:`Path.validate` / :meth:`Path.from_edges`; the pure sequence
operations never need the network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..exceptions import PathError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .graph import RoadNetwork


class Path:
    """An ordered sequence of edge ids representing a road-network path."""

    __slots__ = ("_edge_ids",)

    def __init__(self, edge_ids: Iterable[int]) -> None:
        edge_ids = tuple(int(e) for e in edge_ids)
        if not edge_ids:
            raise PathError("a path must contain at least one edge")
        if len(set(edge_ids)) != len(edge_ids):
            raise PathError(f"a path may not repeat edges: {edge_ids}")
        self._edge_ids = edge_ids

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, network: "RoadNetwork", edge_ids: Iterable[int]) -> "Path":
        """Build a path and validate it against ``network``."""
        path = cls(edge_ids)
        path.validate(network)
        return path

    @classmethod
    def from_vertices(cls, network: "RoadNetwork", vertex_ids: Sequence[int]) -> "Path":
        """Build a path from a vertex sequence (consecutive vertices must be connected)."""
        if len(vertex_ids) < 2:
            raise PathError("need at least two vertices to form a path")
        edge_ids = []
        for source, target in zip(vertex_ids[:-1], vertex_ids[1:]):
            edge = network.edge_between(source, target)
            if edge is None:
                raise PathError(f"no edge from vertex {source} to vertex {target}")
            edge_ids.append(edge.edge_id)
        return cls.from_edges(network, edge_ids)

    def validate(self, network: "RoadNetwork") -> None:
        """Raise :class:`PathError` if the path is invalid in ``network``.

        Checks that every edge exists, consecutive edges are adjacent, and
        the visited vertices are distinct (simple path).
        """
        edges = [network.edge(edge_id) for edge_id in self._edge_ids]
        for first, second in zip(edges[:-1], edges[1:]):
            if first.target != second.source:
                raise PathError(
                    f"edges {first.edge_id} and {second.edge_id} are not adjacent "
                    f"({first.source}->{first.target} then {second.source}->{second.target})"
                )
        visited = [edges[0].source] + [edge.target for edge in edges]
        if len(set(visited)) != len(visited):
            raise PathError(f"path visits a vertex more than once: {visited}")

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def edge_ids(self) -> tuple[int, ...]:
        """The edge ids of the path, in traversal order."""
        return self._edge_ids

    @property
    def cardinality(self) -> int:
        """Number of edges in the path (the paper's ``|P|``)."""
        return len(self._edge_ids)

    def __len__(self) -> int:
        return len(self._edge_ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self._edge_ids)

    def __getitem__(self, index):
        if isinstance(index, slice):
            sub = self._edge_ids[index]
            if not sub:
                raise PathError("slicing produced an empty path")
            return Path(sub)
        return self._edge_ids[index]

    def __contains__(self, edge_id: int) -> bool:
        return edge_id in self._edge_ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._edge_ids == other._edge_ids

    def __hash__(self) -> int:
        return hash(self._edge_ids)

    def __repr__(self) -> str:
        inner = ", ".join(f"e{eid}" for eid in self._edge_ids)
        return f"Path(<{inner}>)"

    # ------------------------------------------------------------------ #
    # Path algebra (Section 2.1)
    # ------------------------------------------------------------------ #
    def is_subpath_of(self, other: "Path") -> bool:
        """True if this path appears as a contiguous subsequence of ``other``."""
        if len(self) > len(other):
            return False
        needle = self._edge_ids
        haystack = other._edge_ids
        span = len(needle)
        return any(haystack[i : i + span] == needle for i in range(len(haystack) - span + 1))

    def is_proper_subpath_of(self, other: "Path") -> bool:
        """True if this path is a sub-path of ``other`` and not equal to it."""
        return self != other and self.is_subpath_of(other)

    def index_in(self, other: "Path") -> int:
        """Index of the first edge of this path within ``other``.

        Raises :class:`PathError` if this path is not a sub-path of ``other``.
        """
        needle = self._edge_ids
        haystack = other._edge_ids
        span = len(needle)
        for i in range(len(haystack) - span + 1):
            if haystack[i : i + span] == needle:
                return i
        raise PathError(f"{self!r} is not a sub-path of {other!r}")

    def intersection(self, other: "Path") -> "Path | None":
        """The shared sub-path ``self ∩ other`` or ``None`` if they are disjoint.

        Because paths are simple (no repeated vertices), two overlapping
        paths share exactly one maximal contiguous run of edges; this
        returns that run.
        """
        other_edges = set(other._edge_ids)
        shared = [eid for eid in self._edge_ids if eid in other_edges]
        if not shared:
            return None
        return Path(shared)

    def difference(self, other: "Path") -> "Path | None":
        """The sub-path of ``self`` excluding edges in ``other`` (``self \\ other``).

        Returns ``None`` when every edge of ``self`` also belongs to
        ``other``.  Mirrors the paper's examples, e.g.
        ``<e1,e2,e3> \\ <e2,e3,e4> = <e1>``.
        """
        other_edges = set(other._edge_ids)
        remaining = [eid for eid in self._edge_ids if eid not in other_edges]
        if not remaining:
            return None
        return Path(remaining)

    def concat(self, other: "Path") -> "Path":
        """Concatenate two edge-disjoint paths (``self`` then ``other``)."""
        overlap = set(self._edge_ids) & set(other._edge_ids)
        if overlap:
            raise PathError(f"cannot concatenate paths sharing edges {sorted(overlap)}")
        return Path(self._edge_ids + other._edge_ids)

    def extend(self, edge_id: int) -> "Path":
        """Return a new path with ``edge_id`` appended ("path + another edge")."""
        if edge_id in self._edge_ids:
            raise PathError(f"edge {edge_id} already in path")
        return Path(self._edge_ids + (int(edge_id),))

    def merge_overlapping(self, other: "Path") -> "Path | None":
        """Merge two paths that overlap on a shared suffix/prefix.

        Used by the bottom-up instantiation: two paths of cardinality
        ``k - 1`` sharing ``k - 2`` edges combine into a path of
        cardinality ``k``.  Returns ``None`` when the paths do not chain.
        """
        n = len(other)
        # self's suffix must equal other's prefix of length n - 1 (or more generally,
        # find the largest overlap where self[-k:] == other[:k]).
        max_overlap = min(len(self), n) - 0
        for k in range(max_overlap, 0, -1):
            if self._edge_ids[-k:] == other._edge_ids[:k]:
                merged = self._edge_ids + other._edge_ids[k:]
                if len(set(merged)) != len(merged):
                    return None
                return Path(merged)
        return None

    def prefix(self, n_edges: int) -> "Path":
        """The first ``n_edges`` edges of the path."""
        if not 1 <= n_edges <= len(self):
            raise PathError(f"prefix length {n_edges} out of range for {self!r}")
        return Path(self._edge_ids[:n_edges])

    def suffix(self, n_edges: int) -> "Path":
        """The last ``n_edges`` edges of the path."""
        if not 1 <= n_edges <= len(self):
            raise PathError(f"suffix length {n_edges} out of range for {self!r}")
        return Path(self._edge_ids[-n_edges:])

    def subpaths(self, length: int) -> list["Path"]:
        """All contiguous sub-paths with exactly ``length`` edges."""
        if length < 1 or length > len(self):
            return []
        return [Path(self._edge_ids[i : i + length]) for i in range(len(self) - length + 1)]

    def all_subpaths(self, max_length: int | None = None) -> list["Path"]:
        """All contiguous sub-paths up to ``max_length`` edges (default: all)."""
        limit = len(self) if max_length is None else min(max_length, len(self))
        result: list[Path] = []
        for length in range(1, limit + 1):
            result.extend(self.subpaths(length))
        return result

    def covers(self, paths: Sequence["Path"]) -> bool:
        """True if the union of ``paths`` covers every edge of this path."""
        covered: set[int] = set()
        for path in paths:
            covered.update(path.edge_ids)
        return covered.issuperset(self._edge_ids)

    # ------------------------------------------------------------------ #
    # Network-aware helpers
    # ------------------------------------------------------------------ #
    def length_m(self, network: "RoadNetwork") -> float:
        """Total length of the path in metres."""
        return sum(network.edge(edge_id).length_m for edge_id in self._edge_ids)

    def free_flow_time_s(self, network: "RoadNetwork") -> float:
        """Travel time in seconds at the speed limit of each edge."""
        return sum(network.edge(edge_id).free_flow_time_s for edge_id in self._edge_ids)

    def vertex_sequence(self, network: "RoadNetwork") -> list[int]:
        """The vertices visited by the path, in order."""
        edges = [network.edge(edge_id) for edge_id in self._edge_ids]
        return [edges[0].source] + [edge.target for edge in edges]
