"""Directed road-network graph model.

A road network is a directed graph ``G = (V, E)`` where vertices model
intersections or road ends and edges model directed road segments
(Section 2.1 of the paper).  Each edge carries the attributes the rest of
the library needs:

* ``length_m`` -- segment length in metres,
* ``speed_limit_kmh`` -- legal speed limit, used to derive fallback cost
  distributions for unit paths without enough trajectories,
* ``category`` -- a coarse road class (motorway / arterial / residential),
  used by the traffic model to pick congestion behaviour.

The class intentionally exposes a small, explicit API (adjacency queries,
edge lookup by id or endpoints) rather than inheriting from
``networkx.DiGraph``; a ``to_networkx`` bridge is provided for algorithms
that want the richer library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from ..exceptions import GraphError
from .spatial import Point

#: Default speed limits (km/h) per road category.
DEFAULT_SPEED_LIMITS_KMH = {
    "motorway": 110.0,
    "arterial": 70.0,
    "collector": 50.0,
    "residential": 40.0,
}


@dataclass(frozen=True)
class Vertex:
    """A road intersection or road end."""

    vertex_id: int
    location: Point

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Vertex({self.vertex_id}, x={self.location.x:.1f}, y={self.location.y:.1f})"


@dataclass(frozen=True)
class Edge:
    """A directed road segment from ``source`` to ``target``.

    ``edge_id`` is unique within a :class:`RoadNetwork` and is the identity
    used throughout the library (paths are sequences of edge ids).
    """

    edge_id: int
    source: int
    target: int
    length_m: float
    speed_limit_kmh: float
    category: str = "collector"

    @property
    def free_flow_time_s(self) -> float:
        """Travel time in seconds at the speed limit."""
        return self.length_m / self.speed_limit_ms

    @property
    def speed_limit_ms(self) -> float:
        """Speed limit in metres per second."""
        return self.speed_limit_kmh / 3.6

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Edge({self.edge_id}, {self.source}->{self.target}, "
            f"{self.length_m:.0f}m, {self.speed_limit_kmh:.0f}km/h)"
        )


class RoadNetwork:
    """A directed road network with integer vertex and edge identifiers."""

    def __init__(self, name: str = "road-network") -> None:
        self.name = name
        self._vertices: dict[int, Vertex] = {}
        self._edges: dict[int, Edge] = {}
        self._out_edges: dict[int, list[int]] = {}
        self._in_edges: dict[int, list[int]] = {}
        self._edge_by_endpoints: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex_id: int, x: float = 0.0, y: float = 0.0) -> Vertex:
        """Add a vertex at planar location ``(x, y)`` metres.

        Re-adding an existing id with the same location is a no-op; with a
        different location it is an error.
        """
        existing = self._vertices.get(vertex_id)
        if existing is not None:
            if existing.location.x != x or existing.location.y != y:
                raise GraphError(f"vertex {vertex_id} already exists at a different location")
            return existing
        vertex = Vertex(vertex_id, Point(x, y))
        self._vertices[vertex_id] = vertex
        self._out_edges.setdefault(vertex_id, [])
        self._in_edges.setdefault(vertex_id, [])
        return vertex

    def add_edge(
        self,
        source: int,
        target: int,
        length_m: float | None = None,
        speed_limit_kmh: float | None = None,
        category: str = "collector",
        edge_id: int | None = None,
    ) -> Edge:
        """Add a directed edge from ``source`` to ``target``.

        ``length_m`` defaults to the planar distance between the endpoint
        vertices; ``speed_limit_kmh`` defaults to the category default.
        Parallel edges between the same endpoints are not supported (the
        paper's model identifies an edge by its endpoints).
        """
        if source not in self._vertices or target not in self._vertices:
            raise GraphError(f"both endpoints must exist before adding edge {source}->{target}")
        if source == target:
            raise GraphError(f"self-loop edges are not allowed (vertex {source})")
        if (source, target) in self._edge_by_endpoints:
            raise GraphError(f"edge {source}->{target} already exists")

        if length_m is None:
            length_m = self._vertices[source].location.distance_to(
                self._vertices[target].location
            )
            length_m = max(length_m, 1.0)
        if length_m <= 0:
            raise GraphError(f"edge length must be positive, got {length_m}")
        if speed_limit_kmh is None:
            speed_limit_kmh = DEFAULT_SPEED_LIMITS_KMH.get(category, 50.0)
        if speed_limit_kmh <= 0:
            raise GraphError(f"speed limit must be positive, got {speed_limit_kmh}")

        if edge_id is None:
            edge_id = len(self._edges)
        if edge_id in self._edges:
            raise GraphError(f"edge id {edge_id} already in use")

        edge = Edge(edge_id, source, target, float(length_m), float(speed_limit_kmh), category)
        self._edges[edge_id] = edge
        self._out_edges[source].append(edge_id)
        self._in_edges[target].append(edge_id)
        self._edge_by_endpoints[(source, target)] = edge_id
        return edge

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._vertices.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    def vertex(self, vertex_id: int) -> Vertex:
        """Return the vertex with the given id."""
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise GraphError(f"unknown vertex {vertex_id}") from None

    def edge(self, edge_id: int) -> Edge:
        """Return the edge with the given id."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"unknown edge {edge_id}") from None

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edges

    def edge_between(self, source: int, target: int) -> Edge | None:
        """Return the edge from ``source`` to ``target`` or ``None``."""
        edge_id = self._edge_by_endpoints.get((source, target))
        return None if edge_id is None else self._edges[edge_id]

    def out_edges(self, vertex_id: int) -> list[Edge]:
        """Outgoing edges of ``vertex_id``."""
        if vertex_id not in self._vertices:
            raise GraphError(f"unknown vertex {vertex_id}")
        return [self._edges[eid] for eid in self._out_edges[vertex_id]]

    def in_edges(self, vertex_id: int) -> list[Edge]:
        """Incoming edges of ``vertex_id``."""
        if vertex_id not in self._vertices:
            raise GraphError(f"unknown vertex {vertex_id}")
        return [self._edges[eid] for eid in self._in_edges[vertex_id]]

    def successors_of_edge(self, edge_id: int) -> list[Edge]:
        """Edges adjacent to ``edge_id`` (their start is this edge's end)."""
        edge = self.edge(edge_id)
        return self.out_edges(edge.target)

    def are_adjacent(self, first_edge_id: int, second_edge_id: int) -> bool:
        """True if the second edge starts where the first one ends."""
        first = self.edge(first_edge_id)
        second = self.edge(second_edge_id)
        return first.target == second.source

    def edge_midpoint(self, edge_id: int) -> Point:
        """Planar midpoint of an edge's endpoints (used by the simulator)."""
        edge = self.edge(edge_id)
        return self.vertex(edge.source).location.midpoint(self.vertex(edge.target).location)

    def total_length_m(self) -> float:
        """Total directed length of the network in metres."""
        return sum(edge.length_m for edge in self._edges.values())

    # ------------------------------------------------------------------ #
    # Interoperability
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Export the network as a ``networkx.DiGraph``.

        Vertices keep their ids, edges carry ``edge_id``, ``length_m``,
        ``speed_limit_kmh``, ``category``, and ``free_flow_time_s``
        attributes.
        """
        graph = nx.DiGraph(name=self.name)
        for vertex in self._vertices.values():
            graph.add_node(vertex.vertex_id, x=vertex.location.x, y=vertex.location.y)
        for edge in self._edges.values():
            graph.add_edge(
                edge.source,
                edge.target,
                edge_id=edge.edge_id,
                length_m=edge.length_m,
                speed_limit_kmh=edge.speed_limit_kmh,
                category=edge.category,
                free_flow_time_s=edge.free_flow_time_s,
            )
        return graph

    @classmethod
    def from_edge_list(
        cls,
        vertices: Iterable[tuple[int, float, float]],
        edges: Iterable[tuple[int, int, float, float, str]],
        name: str = "road-network",
    ) -> "RoadNetwork":
        """Build a network from explicit vertex and edge tuples.

        ``vertices`` yields ``(vertex_id, x, y)``; ``edges`` yields
        ``(source, target, length_m, speed_limit_kmh, category)``.
        """
        network = cls(name=name)
        for vertex_id, x, y in vertices:
            network.add_vertex(vertex_id, x, y)
        for source, target, length_m, speed, category in edges:
            network.add_edge(source, target, length_m, speed, category)
        return network

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RoadNetwork({self.name!r}, |V|={self.num_vertices}, |E|={self.num_edges})"
