"""Synthetic road-network generators.

The paper evaluates on two real road networks (Aalborg, exported from
OpenStreetMap, and Beijing, from the traffic management bureau).  Those
exports are not available offline, so this module builds synthetic city
networks that expose the same structure the algorithms rely on: a mix of
fast arterial roads and slow residential streets, realistic segment
lengths, and enough meaningful long paths for the sparseness phenomenon to
appear.

Two presets mirror the paper's datasets at laptop scale:

* :func:`aalborg_like` -- a dense grid with all road categories (the Aalborg
  network "contains all roads"),
* :func:`beijing_like` -- a ring-radial network of motorways and arterials
  only (the Beijing network "contains only highways and main roads").

Both accept a ``scale`` argument; ``scale=1.0`` keeps the default
laptop-size networks, larger values approach the paper's sizes.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import GraphError
from .graph import RoadNetwork


def grid_network(
    rows: int,
    cols: int,
    block_length_m: float = 250.0,
    arterial_every: int = 4,
    name: str = "grid",
    bidirectional: bool = True,
) -> RoadNetwork:
    """Build a rectangular grid network.

    Every ``arterial_every``-th row/column is an arterial (higher speed
    limit); other streets are residential.  Edges are added in both
    directions when ``bidirectional`` is true.
    """
    if rows < 2 or cols < 2:
        raise GraphError("grid_network needs at least a 2x2 grid")
    network = RoadNetwork(name=name)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            network.add_vertex(vid(r, c), x=c * block_length_m, y=r * block_length_m)

    def category_for(r_or_c: int) -> str:
        return "arterial" if arterial_every > 0 and r_or_c % arterial_every == 0 else "residential"

    def add(u: int, v: int, category: str) -> None:
        network.add_edge(u, v, block_length_m, _speed_for(category), category)
        if bidirectional:
            network.add_edge(v, u, block_length_m, _speed_for(category), category)

    for r in range(rows):
        for c in range(cols - 1):
            add(vid(r, c), vid(r, c + 1), category_for(r))
    for c in range(cols):
        for r in range(rows - 1):
            add(vid(r, c), vid(r + 1, c), category_for(c))
    return network


def _speed_for(category: str) -> float:
    """Speed limit (km/h) used by the generators for each road category."""
    return {
        "motorway": 110.0,
        "arterial": 70.0,
        "collector": 50.0,
        "residential": 40.0,
    }.get(category, 50.0)


def ring_radial_city(
    n_rings: int = 4,
    n_radials: int = 12,
    ring_spacing_m: float = 1500.0,
    name: str = "ring-radial",
) -> RoadNetwork:
    """Build a ring-radial city of motorway rings and arterial radials.

    Vertices lie on concentric rings around a centre vertex; ring roads are
    motorways, radial roads are arterials.  This mimics the coarse Beijing
    network of "highways and main roads only".
    """
    if n_rings < 1 or n_radials < 3:
        raise GraphError("ring_radial_city needs n_rings >= 1 and n_radials >= 3")
    network = RoadNetwork(name=name)
    centre = network.add_vertex(0, 0.0, 0.0)

    def vid(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * n_radials + (spoke % n_radials)

    for ring in range(1, n_rings + 1):
        radius = ring * ring_spacing_m
        for spoke in range(n_radials):
            angle = 2.0 * math.pi * spoke / n_radials
            network.add_vertex(vid(ring, spoke), radius * math.cos(angle), radius * math.sin(angle))

    # Radial arterials: centre <-> ring1 <-> ring2 <-> ...
    for spoke in range(n_radials):
        previous = centre.vertex_id
        for ring in range(1, n_rings + 1):
            current = vid(ring, spoke)
            length = ring_spacing_m
            network.add_edge(previous, current, length, _speed_for("arterial"), "arterial")
            network.add_edge(current, previous, length, _speed_for("arterial"), "arterial")
            previous = current

    # Ring motorways.
    for ring in range(1, n_rings + 1):
        radius = ring * ring_spacing_m
        arc = 2.0 * math.pi * radius / n_radials
        for spoke in range(n_radials):
            u = vid(ring, spoke)
            v = vid(ring, spoke + 1)
            network.add_edge(u, v, arc, _speed_for("motorway"), "motorway")
            network.add_edge(v, u, arc, _speed_for("motorway"), "motorway")
    return network


def aalborg_like(scale: float = 1.0, seed: int = 11) -> RoadNetwork:
    """A dense mixed-category network standing in for the Aalborg OSM export.

    ``scale=1.0`` yields roughly 400 vertices / 1500 edges, which keeps the
    full benchmark suite laptop-friendly; scaling up approaches the paper's
    20k vertices / 41k edges.
    """
    rows = max(4, int(round(20 * math.sqrt(scale))))
    cols = max(4, int(round(20 * math.sqrt(scale))))
    network = grid_network(rows, cols, block_length_m=220.0, arterial_every=4, name="aalborg-like")
    _jitter_vertices(network, magnitude_m=40.0, seed=seed)
    return network


def beijing_like(scale: float = 1.0, seed: int = 13) -> RoadNetwork:
    """A highways-and-main-roads network standing in for the Beijing dataset."""
    n_rings = max(3, int(round(5 * math.sqrt(scale))))
    n_radials = max(8, int(round(14 * math.sqrt(scale))))
    network = ring_radial_city(n_rings=n_rings, n_radials=n_radials, name="beijing-like")
    _jitter_vertices(network, magnitude_m=60.0, seed=seed)
    return network


def _jitter_vertices(network: RoadNetwork, magnitude_m: float, seed: int) -> None:
    """Perturb vertex locations slightly so geometry is not perfectly regular.

    Edge lengths were fixed at construction time and are not recomputed;
    the jitter only affects GPS emission geometry, matching the fact that
    real map geometry and signposted lengths differ slightly.
    """
    rng = np.random.default_rng(seed)
    jittered = {}
    for vertex in network.vertices():
        dx, dy = rng.normal(0.0, magnitude_m, size=2)
        jittered[vertex.vertex_id] = (vertex.location.x + dx, vertex.location.y + dy)
    # Rebuild the private vertex table with jittered coordinates.  We go
    # through add_vertex-style reconstruction to keep Vertex immutable.
    from .graph import Vertex
    from .spatial import Point

    for vertex_id, (x, y) in jittered.items():
        network._vertices[vertex_id] = Vertex(vertex_id, Point(x, y))
