"""Road-network substrate: graph model, path algebra, generators, routing."""

from .graph import Edge, RoadNetwork, Vertex
from .path import Path
from .generators import (
    aalborg_like,
    beijing_like,
    grid_network,
    ring_radial_city,
)
from .routing import (
    ReverseBoundsIndex,
    astar_path,
    dijkstra,
    k_shortest_paths,
    random_path,
    reverse_dijkstra,
    shortest_path,
)
from .spatial import Point, haversine_m, project_point_to_segment

__all__ = [
    "Edge",
    "Path",
    "Point",
    "ReverseBoundsIndex",
    "RoadNetwork",
    "Vertex",
    "aalborg_like",
    "astar_path",
    "beijing_like",
    "dijkstra",
    "grid_network",
    "haversine_m",
    "k_shortest_paths",
    "project_point_to_segment",
    "random_path",
    "reverse_dijkstra",
    "ring_radial_city",
    "shortest_path",
]
