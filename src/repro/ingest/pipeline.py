"""The streaming ingest pipeline: online GPS -> matched -> live store -> caches.

:class:`TrajectoryIngestPipeline` is the write path that keeps the paper's
estimates fresh as vehicles report in:

1. **normalise + match** -- raw GPS input is normalised
   (:func:`~repro.ingest.normalize.normalize_gps_records`) and HMM
   map-matched; unmatchable traces are skipped with a recorded reason
   (or re-raised under ``match_failure_policy="raise"``);
2. **append** -- matched trajectories go into a
   :class:`~repro.trajectories.mutable.MutableTrajectoryStore` with
   incremental inverted-index maintenance (``O(|trajectory|)`` per append);
3. **invalidate** -- each append yields an edge-level dirty set that drives
   *targeted* invalidation of the attached service's result and
   decomposition caches (entries on untouched paths stay hot), with
   optional re-warmup of the dropped keys;
4. **refresh** -- periodically (``auto_refresh_trajectories``) or on
   demand, the hybrid graph is re-instantiated from a store snapshot and
   the service is rebased onto it, making estimates on affected paths
   numerically identical to a cold rebuild from the same data.

Input can be pushed synchronously (:meth:`~TrajectoryIngestPipeline.ingest`,
:meth:`~TrajectoryIngestPipeline.ingest_batch`) or streamed through a
bounded queue drained by worker threads
(:meth:`~TrajectoryIngestPipeline.start` /
:meth:`~TrajectoryIngestPipeline.submit` /
:meth:`~TrajectoryIngestPipeline.stop`); the bounded queue gives
backpressure under bursty input instead of unbounded memory growth.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import Counter, deque
from pathlib import Path as FSPath
from typing import TYPE_CHECKING, Callable, Iterable

from ..config import IngestParameters, PersistParameters
from ..exceptions import IngestError, MapMatchingError, ReproError, TrajectoryError
from ..roadnet.path import Path
from ..service.requests import EstimateRequest
from ..trajectories.gps import Trajectory
from ..trajectories.matched import MatchedTrajectory
from ..trajectories.mutable import MutableTrajectoryStore
from .normalize import normalize_gps_records
from .results import (
    REASON_ERROR,
    REASON_INVALID,
    REASON_TOO_FEW_RECORDS,
    REASON_UNMATCHABLE,
    IngestReport,
    IngestResult,
    IngestStats,
    RefreshReport,
    SnapshotReport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.hybrid_graph import HybridGraph
    from ..core.instantiation import HybridGraphBuilder
    from ..frontend.frontend import ServingFrontend
    from ..telemetry import MetricsRegistry, Telemetry
    from ..service.service import CostEstimationService, InvalidationReport
    from ..trajectories.mapmatching import HMMMapMatcher

#: Placed on the queue once per worker to shut streaming mode down.
_SENTINEL = object()


def _item_id(item) -> int:
    """Best-effort trajectory id of any ingest input shape (for skip records)."""
    if isinstance(item, tuple) and item:
        try:
            return int(item[0])
        except (TypeError, ValueError):
            return -1
    return getattr(item, "trajectory_id", -1)


class TrajectoryIngestPipeline:
    """Online trajectory ingestion with live store and cache maintenance.

    Parameters
    ----------
    store:
        The mutable store appends go into.  May start empty.
    matcher:
        HMM map matcher for raw GPS input.  Optional: a pipeline fed only
        pre-matched trajectories (e.g. from an upstream matching tier)
        does not need one.
    service:
        The estimation service whose caches track the store.  Optional: a
        detached pipeline just maintains the store.
    frontend:
        A :class:`~repro.frontend.ServingFrontend` wrapping the service.
        When given, invalidation passes are routed through
        :meth:`~repro.frontend.ServingFrontend.invalidate_edges` so the
        front-end's serving statistics count them; ``service`` may then be
        omitted (it is taken from the front-end).
    builder_factory:
        Zero-argument callable returning a *fresh*
        :class:`~repro.core.instantiation.HybridGraphBuilder`; required for
        :meth:`refresh`.  A fresh builder per refresh matters: it makes the
        rebuilt graph identical to a cold build from the same snapshot
        (the builder's internal RNG is consumed during a build).
    parameters:
        :class:`~repro.config.IngestParameters`; defaults apply when
        ``None``.
    persist_dir:
        Directory for epoch-tagged snapshots (:mod:`repro.persist`).
        Required only for auto-named :meth:`save_snapshot` calls and the
        ``PersistParameters.auto_snapshot_trajectories`` periodic
        snapshots; an explicit directory per call works without it.
    persist_parameters:
        :class:`~repro.config.PersistParameters`; defaults apply when
        ``None``.
    """

    def __init__(
        self,
        store: MutableTrajectoryStore,
        matcher: "HMMMapMatcher | None" = None,
        service: "CostEstimationService | None" = None,
        frontend: "ServingFrontend | None" = None,
        builder_factory: "Callable[[], HybridGraphBuilder] | None" = None,
        parameters: IngestParameters | None = None,
        persist_dir: "str | FSPath | None" = None,
        persist_parameters: PersistParameters | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if not isinstance(store, MutableTrajectoryStore):
            raise IngestError(
                "the ingest pipeline needs a MutableTrajectoryStore, got "
                f"{type(store).__name__}"
            )
        if frontend is not None:
            if service is None:
                service = frontend.service
            elif service is not frontend.service:
                raise IngestError(
                    "frontend wraps a different service than the one passed in; "
                    "pass either, not two disagreeing ones"
                )
        self.store = store
        self.matcher = matcher
        self.service = service
        self.frontend = frontend
        self.parameters = parameters or IngestParameters()
        self._builder_factory = builder_factory
        # Commit lock: serialises append + invalidate + counter updates so
        # stats stay consistent across queue workers.  Reentrant because a
        # commit can trigger an auto-refresh.
        self._lock = threading.RLock()
        self._queue: queue.Queue | None = None
        self._workers: list[threading.Thread] = []
        # Counters (all guarded by the commit lock).
        self._submitted = 0
        self._accepted = 0
        self._skip_reasons: Counter[str] = Counter()
        self._recent_skips: deque[IngestResult] = deque(maxlen=64)
        self._pending_dirty: set[int] = set()
        self._since_refresh = 0
        self._invalidated_results = 0
        self._invalidated_decompositions = 0
        self._invalidated_routes = 0
        self._rewarmed = 0
        self._refreshes = 0
        # Snapshot persistence state (guarded by the commit lock).
        self.persist_parameters = persist_parameters or PersistParameters()
        self._persist_dir = None if persist_dir is None else FSPath(persist_dir)
        self._dirty_since_snapshot: set[int] = set()
        self._since_snapshot = 0
        self._last_snapshot_path: FSPath | None = None
        self._deltas_since_full = 0
        self._snapshots = 0
        #: Optional telemetry: per-stage latency histograms plus callback
        #: gauges over the counters above.  ``None`` keeps the write path
        #: free of any timing work (one attribute check per stage).
        self.telemetry = telemetry
        self._prepare_hist = None
        self._commit_hist = None
        if telemetry is not None:
            self.register_metrics(telemetry.registry)

    # ------------------------------------------------------------------ #
    # Synchronous ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, item: "MatchedTrajectory | Trajectory | tuple") -> IngestResult:
        """Ingest one trajectory and apply its effects immediately.

        ``item`` may be a :class:`MatchedTrajectory` (append directly), a
        :class:`Trajectory` (map-match first), or a ``(trajectory_id,
        gps_records)`` pair (normalise messy records, then match).
        """
        with self._lock:
            self._submitted += 1
        matched, skip = self._prepare(item)
        if skip is not None:
            return skip
        dirty, _invalidation, _rewarmed = self._commit([matched])
        return IngestResult(
            trajectory_id=matched.trajectory_id,
            accepted=True,
            dirty_edges=frozenset(dirty),
            matched=matched,
        )

    def ingest_batch(self, items: Iterable["MatchedTrajectory | Trajectory | tuple"]) -> IngestReport:
        """Ingest a batch, committing all appends under one invalidation pass.

        Batching amortises the cache scan: the union of the batch's dirty
        sets is applied once instead of per trajectory.
        """
        started = time.perf_counter()
        results: list[IngestResult | None] = []
        matched_batch: list[MatchedTrajectory] = []
        for item in items:
            with self._lock:
                self._submitted += 1
            matched, skip = self._prepare(item)
            if skip is not None:
                results.append(skip)
                continue
            matched_batch.append(matched)
            results.append(None)  # placeholder, filled after the commit
        dirty: set[int] = set()
        invalidation = None
        rewarmed = 0
        if matched_batch:
            dirty, invalidation, rewarmed = self._commit(matched_batch)
        accepted = iter(matched_batch)
        for index, result in enumerate(results):
            if result is None:
                matched = next(accepted)
                results[index] = IngestResult(
                    trajectory_id=matched.trajectory_id,
                    accepted=True,
                    dirty_edges=frozenset(matched.edge_ids),
                    matched=matched,
                )
        return IngestReport(
            results=tuple(results),
            dirty_edges=frozenset(dirty),
            invalidation=invalidation,
            rewarmed=rewarmed,
            duration_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # Streaming ingestion (bounded queue + workers)
    # ------------------------------------------------------------------ #
    def start(self) -> "TrajectoryIngestPipeline":
        """Spawn the worker threads that drain the submission queue."""
        if self._workers:
            raise IngestError("the pipeline is already started")
        self._queue = queue.Queue(maxsize=self.parameters.queue_capacity)
        for index in range(self.parameters.n_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"ingest-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    def submit(
        self,
        item: "MatchedTrajectory | Trajectory | tuple",
        block: bool = True,
        timeout: float | None = None,
    ) -> bool:
        """Enqueue one item for the workers; ``False`` if the queue stayed full.

        With ``block=True`` (the default) a full queue applies
        backpressure: the caller waits until a worker frees a slot.
        """
        if self._queue is None:
            raise IngestError("streaming mode is not started; call start() or use ingest()")
        try:
            self._queue.put(item, block=block, timeout=timeout)
        except queue.Full:
            return False
        with self._lock:
            self._submitted += 1
        return True

    def drain(self) -> None:
        """Block until every submitted item has been fully processed."""
        if self._queue is not None:
            self._queue.join()

    def stop(self, drain: bool = True) -> None:
        """Stop streaming mode (optionally draining the backlog first)."""
        if not self._workers:
            return
        if drain:
            self.drain()
        assert self._queue is not None
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()
        self._workers = []
        self._queue = None

    def __enter__(self) -> "TrajectoryIngestPipeline":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                try:
                    # allow_raise=False: in streaming mode, match failures
                    # are always recorded under their real reason -- there
                    # is no caller to re-raise to on a worker thread.
                    matched, skip = self._prepare(item, allow_raise=False)
                    if matched is not None:
                        self._commit([matched])
                except Exception as error:
                    # A streamed item must never kill a worker (a dead
                    # worker strands the queue and deadlocks drain()):
                    # record anything unexpected and move on.
                    self._record_skip(
                        IngestResult(
                            trajectory_id=_item_id(item),
                            accepted=False,
                            reason=REASON_ERROR,
                            detail=f"{type(error).__name__}: {error}",
                        )
                    )
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------ #
    # Refresh: rebuild the hybrid graph, rebase the service
    # ------------------------------------------------------------------ #
    def refresh(self) -> RefreshReport:
        """Re-instantiate the hybrid graph from a store snapshot and rebase.

        After a refresh, service estimates on paths touched since the last
        refresh are numerically identical to a cold rebuild from the same
        data: the builder is freshly constructed (same seed, fresh RNG),
        the snapshot is a consistent point-in-time view, and every stale
        cache entry intersecting the accumulated dirty set is dropped.
        Entries on untouched paths are kept -- their observation sets did
        not change.
        """
        if self.service is None or self._builder_factory is None:
            raise IngestError("refresh() needs both a service and a builder_factory")
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> RefreshReport:
        started = time.perf_counter()
        snapshot = self.store.snapshot()
        graph = self._builder_factory().build(snapshot)
        dirty = frozenset(self._pending_dirty)
        self._pending_dirty.clear()
        self._since_refresh = 0
        invalidation = self.service.rebase(graph, dirty_edges=dirty)
        self._record_invalidation(invalidation)
        rewarmed = 0
        if self.parameters.rewarm_invalidated and invalidation.result_keys:
            rewarmed = self._rewarm(invalidation.result_keys)
        self._refreshes += 1
        return RefreshReport(
            store_version=snapshot.version,
            n_trajectories=len(snapshot),
            n_variables=graph.num_variables(),
            dirty_edges=dirty,
            invalidation=invalidation,
            rewarmed=rewarmed,
            duration_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # Snapshot persistence: epoch-tagged full / delta snapshots
    # ------------------------------------------------------------------ #
    def save_snapshot(self, directory=None, full: bool = False) -> SnapshotReport:
        """Persist the pipeline's state as an epoch-tagged snapshot.

        The first snapshot (and any ``full=True`` call) writes a **full**
        snapshot: hybrid graph, the whole store, and the service's warm
        cache entries.  Later calls write **delta** snapshots against the
        previous one, containing only the variables whose path intersects
        the dirty-edge set accumulated since that snapshot -- the same
        per-append sets that drive targeted cache invalidation -- plus the
        appended store segment.  Every
        ``PersistParameters.compact_every_deltas`` deltas the chain is
        compacted by writing a full snapshot instead.

        ``directory`` defaults to ``<persist_dir>/snapshot-<epoch>``.  For
        delta-restore equality with a cold rebuild, call :meth:`refresh`
        first (a delta persists the graph *as served*, which may lag the
        store between refreshes).
        """
        with self._lock:
            return self._save_snapshot_locked(directory, full)

    def _save_snapshot_locked(self, directory, full: bool) -> SnapshotReport:
        from ..persist.delta import write_delta_snapshot
        from ..persist.writer import write_snapshot

        if self.service is None:
            raise IngestError(
                "save_snapshot() needs a service: the hybrid graph to persist "
                "lives behind it"
            )
        started = time.perf_counter()
        snapshot = self.store.snapshot()
        graph = self.service.hybrid_graph
        persist = self.persist_parameters
        if directory is None:
            if self._persist_dir is None:
                raise IngestError(
                    "save_snapshot() without a directory needs the pipeline to be "
                    "constructed with persist_dir"
                )
            directory = self._persist_dir / f"snapshot-{snapshot.version:08d}"
        directory = FSPath(directory)
        if (
            self._last_snapshot_path is not None
            and directory.resolve() == self._last_snapshot_path.resolve()
        ):
            # Nothing new to persist (e.g. a periodic snapshot firing during
            # a quiet ingest window resolves to the same epoch-named
            # directory).  Writing a delta *into its own base* would destroy
            # the snapshot; report the existing one instead.
            from ..persist.format import read_manifest

            manifest = read_manifest(directory)
            return SnapshotReport(
                path=str(directory),
                kind=manifest["kind"],
                epoch=int(manifest["epoch"]),
                n_trajectories=len(snapshot),
                n_variables_written=0,
                dirty_edges=frozenset(),
                duration_s=time.perf_counter() - started,
            )

        write_delta = (
            not full
            and self._last_snapshot_path is not None
            and not (
                persist.compact_every_deltas
                and self._deltas_since_full >= persist.compact_every_deltas
            )
        )
        dirty = frozenset(self._dirty_since_snapshot)
        if write_delta:
            manifest = write_delta_snapshot(
                directory,
                base=self._last_snapshot_path,
                graph=graph,
                store=snapshot,
                dirty_edges=dirty,
                epoch=snapshot.version,
                service_info=self.service._snapshot_service_info(),
                parameters=persist,
            )
            self._deltas_since_full += 1
        else:
            cache_entries = (
                self.service.export_cache_entries(limit=persist.max_cache_entries)
                if persist.include_caches
                else ()
            )
            manifest = write_snapshot(
                directory,
                graph=graph,
                store=snapshot,
                cache_entries=cache_entries,
                epoch=snapshot.version,
                service_info=self.service._snapshot_service_info(),
                parameters=persist,
            )
            self._deltas_since_full = 0
        self._last_snapshot_path = directory
        # Edges dirtied since the last *refresh* are not yet reflected in
        # the served graph this snapshot persisted: a later refresh will
        # change their variables, so they must stay dirty for the next
        # delta.  Only edges the graph has absorbed are truly settled.
        self._dirty_since_snapshot = set(self._pending_dirty)
        self._since_snapshot = 0
        self._snapshots += 1
        graph_meta = manifest.get("graph") or {}
        return SnapshotReport(
            path=str(directory),
            kind=manifest["kind"],
            epoch=int(manifest["epoch"]),
            n_trajectories=len(snapshot),
            n_variables_written=int(
                graph_meta.get("n_univariate", 0) + graph_meta.get("n_multivariate", 0)
            ),
            dirty_edges=dirty if manifest["kind"] == "delta" else frozenset(),
            duration_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> IngestStats:
        """A consistent snapshot of the pipeline's counters."""
        with self._lock:
            skipped = sum(self._skip_reasons.values())
            return IngestStats(
                submitted=self._submitted,
                accepted=self._accepted,
                skipped=skipped,
                skip_reasons=dict(self._skip_reasons),
                backlog=self._queue.qsize() if self._queue is not None else 0,
                store_version=self.store.version,
                pending_dirty_edges=len(self._pending_dirty),
                invalidated_results=self._invalidated_results,
                invalidated_decompositions=self._invalidated_decompositions,
                invalidated_routes=self._invalidated_routes,
                rewarmed=self._rewarmed,
                refreshes=self._refreshes,
                snapshots=self._snapshots,
            )

    def recent_skips(self) -> list[IngestResult]:
        """The most recent skipped items, oldest first (bounded window)."""
        with self._lock:
            return list(self._recent_skips)

    @property
    def backlog(self) -> int:
        """Items waiting in the streaming queue (0 when not streaming).

        A staleness signal: a growing backlog means served estimates lag
        the observed traffic, which is what readiness probes and the
        staleness SLO watch."""
        queue = self._queue
        return queue.qsize() if queue is not None else 0

    @property
    def pending_dirty_edges(self) -> int:
        """Edges written since the last refresh (un-propagated updates)."""
        with self._lock:
            return len(self._pending_dirty)

    def register_metrics(self, registry: "MetricsRegistry") -> "MetricsRegistry":
        """Expose the write path's live stats through a telemetry registry.

        Counters become callback-backed gauges over the pipeline's
        existing bookkeeping (invalidation churn, backlog, dirty-edge
        pressure), and the two pipeline stages get latency histograms:
        ``prepare`` (normalise + map-match) and ``commit`` (append +
        invalidate + refresh/snapshot triggers).  The histograms are the
        only push-style metrics; without them the write path is untouched.
        """
        gauge = registry.gauge
        counters = (
            ("repro_ingest_submitted_total", "Trajectories submitted", lambda: self._submitted),
            ("repro_ingest_accepted_total", "Trajectories appended to the store", lambda: self._accepted),
            ("repro_ingest_skipped_total", "Trajectories skipped (unmatchable, too short, invalid)", lambda: sum(self._skip_reasons.values())),
            ("repro_ingest_invalidated_results_total", "Result-cache entries dropped by ingest invalidation", lambda: self._invalidated_results),
            ("repro_ingest_invalidated_decompositions_total", "Decomposition-cache entries dropped by ingest invalidation", lambda: self._invalidated_decompositions),
            ("repro_ingest_invalidated_routes_total", "Route-cache entries dropped by ingest invalidation", lambda: self._invalidated_routes),
            ("repro_ingest_rewarmed_total", "Invalidated result keys recomputed by re-warmup", lambda: self._rewarmed),
            ("repro_ingest_refreshes_total", "Hybrid-graph refresh + service rebase passes", lambda: self._refreshes),
            ("repro_ingest_snapshots_total", "Snapshots written by the pipeline", lambda: self._snapshots),
            ("repro_ingest_pending_dirty_edges", "Edges dirtied since the last refresh", lambda: len(self._pending_dirty)),
            ("repro_ingest_backlog", "Items waiting in the streaming queue", lambda: self._queue.qsize() if self._queue is not None else 0),
            ("repro_ingest_store_version", "Store version (one bump per append batch)", lambda: self.store.version),
        )
        for name, help_text, callback in counters:
            gauge(name, help_text, callback=callback)
        self._prepare_hist = registry.histogram(
            "repro_ingest_prepare_seconds", "Normalise + map-match stage time per item"
        )
        self._commit_hist = registry.histogram(
            "repro_ingest_commit_seconds", "Append + invalidate stage time per batch"
        )
        return registry

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _prepare(
        self, item: "MatchedTrajectory | Trajectory | tuple", allow_raise: bool = True
    ) -> tuple[MatchedTrajectory | None, IngestResult | None]:
        """Normalise and map-match one input item.

        Returns ``(matched, None)`` on success, ``(None, skip_result)``
        when the item was skipped.  ``allow_raise=False`` (streaming mode)
        records match failures even under the ``"raise"`` policy.
        """
        hist = self._prepare_hist
        if hist is None:
            return self._prepare_inner(item, allow_raise)
        started = time.perf_counter()
        try:
            return self._prepare_inner(item, allow_raise)
        finally:
            hist.observe(time.perf_counter() - started)

    def _prepare_inner(
        self, item: "MatchedTrajectory | Trajectory | tuple", allow_raise: bool = True
    ) -> tuple[MatchedTrajectory | None, IngestResult | None]:
        if isinstance(item, MatchedTrajectory):
            return item, None
        if isinstance(item, tuple):
            if len(item) != 2:
                raise IngestError(
                    "raw-record input must be a (trajectory_id, gps_records) pair"
                )
            trajectory_id, records = item
            try:
                trajectory_id = int(trajectory_id)
            except (TypeError, ValueError):
                raise IngestError(
                    f"trajectory id must be an integer, got {trajectory_id!r}"
                ) from None
            try:
                gps = normalize_gps_records(
                    trajectory_id, records, self.parameters.min_gps_records
                )
            except TrajectoryError as error:
                return None, self._skip(trajectory_id, REASON_TOO_FEW_RECORDS, error, allow_raise)
        elif isinstance(item, Trajectory):
            gps = item
            if len(gps) < self.parameters.min_gps_records:
                return None, self._skip(
                    gps.trajectory_id,
                    REASON_TOO_FEW_RECORDS,
                    TrajectoryError(
                        f"trajectory {gps.trajectory_id} has {len(gps)} GPS records, "
                        f"need at least {self.parameters.min_gps_records}"
                    ),
                    allow_raise,
                )
        else:
            raise IngestError(
                "cannot ingest a "
                f"{type(item).__name__}: expected MatchedTrajectory, Trajectory, "
                "or a (trajectory_id, gps_records) pair"
            )
        if self.matcher is None:
            raise IngestError("raw GPS input needs a map matcher; construct the pipeline with one")
        try:
            matched = self.matcher.match(gps)
        except MapMatchingError as error:
            return None, self._skip(gps.trajectory_id, REASON_UNMATCHABLE, error, allow_raise)
        except TrajectoryError as error:
            return None, self._skip(gps.trajectory_id, REASON_INVALID, error, allow_raise)
        return matched, None

    def _skip(
        self, trajectory_id: int, reason: str, error: ReproError, allow_raise: bool = True
    ) -> IngestResult:
        if allow_raise and self.parameters.match_failure_policy == "raise":
            raise error
        result = IngestResult(
            trajectory_id=trajectory_id, accepted=False, reason=reason, detail=str(error)
        )
        self._record_skip(result)
        return result

    def _record_skip(self, result: IngestResult) -> None:
        with self._lock:
            self._skip_reasons[result.reason or REASON_ERROR] += 1
            self._recent_skips.append(result)

    def _commit(
        self, matched_batch: list[MatchedTrajectory]
    ) -> tuple[set[int], "InvalidationReport | None", int]:
        """Append a batch and apply its cache effects atomically."""
        hist = self._commit_hist
        if hist is None:
            return self._commit_inner(matched_batch)
        started = time.perf_counter()
        try:
            return self._commit_inner(matched_batch)
        finally:
            hist.observe(time.perf_counter() - started)

    def _commit_inner(
        self, matched_batch: list[MatchedTrajectory]
    ) -> tuple[set[int], "InvalidationReport | None", int]:
        with self._lock:
            dirty = self.store.append_many(matched_batch)
            self._accepted += len(matched_batch)
            self._pending_dirty |= dirty
            self._dirty_since_snapshot |= dirty
            self._since_refresh += len(matched_batch)
            self._since_snapshot += len(matched_batch)
            invalidation = None
            rewarmed = 0
            if self.service is not None and self.parameters.invalidate_on_append and dirty:
                invalidation = self._invalidate(dirty)
                self._record_invalidation(invalidation)
                if self.parameters.rewarm_invalidated and invalidation.result_keys:
                    rewarmed = self._rewarm(invalidation.result_keys)
            if (
                self.parameters.auto_refresh_trajectories
                and self._since_refresh >= self.parameters.auto_refresh_trajectories
                and self.service is not None
                and self._builder_factory is not None
            ):
                self._refresh_locked()
            if (
                self.persist_parameters.auto_snapshot_trajectories
                and self._since_snapshot >= self.persist_parameters.auto_snapshot_trajectories
                and self._persist_dir is not None
                and self.service is not None
            ):
                self._save_snapshot_locked(None, full=False)
            return dirty, invalidation, rewarmed

    def _invalidate(self, dirty: set[int]) -> "InvalidationReport":
        """One targeted invalidation pass, through the front-end when attached.

        Routing through :meth:`ServingFrontend.invalidate_edges` keeps the
        front-end's coherence counter honest; the cache semantics are the
        service's either way.
        """
        assert self.service is not None
        if self.frontend is not None:
            return self.frontend.invalidate_edges(dirty)
        return self.service.invalidate_edges(dirty)

    def _record_invalidation(self, invalidation: "InvalidationReport") -> None:
        self._invalidated_results += len(invalidation.result_keys)
        self._invalidated_decompositions += len(invalidation.decomposition_keys)
        self._invalidated_routes += len(invalidation.route_keys)

    def _rewarm(self, result_keys: tuple) -> int:
        """Recompute recently invalidated result-cache entries.

        Keys encode ``(path edge ids, alpha-interval index, method)``; the
        interval midpoint stands in for the original departure time (the
        cache buckets by interval, so the key maps back exactly).
        """
        assert self.service is not None
        width_s = self.service.alpha_minutes * 60.0
        requests = [
            EstimateRequest(
                path=Path(list(edge_ids)),
                departure_time_s=(interval_index + 0.5) * width_s,
                method=method,
            )
            for edge_ids, interval_index, method in result_keys[: self.parameters.max_rewarm_keys]
        ]
        self.service.submit_batch(requests)
        with self._lock:
            self._rewarmed += len(requests)
        return len(requests)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        stats = self.stats()
        return (
            f"TrajectoryIngestPipeline(accepted={stats.accepted}, "
            f"skipped={stats.skipped}, backlog={stats.backlog}, "
            f"store_version={stats.store_version})"
        )
