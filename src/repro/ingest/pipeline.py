"""The streaming ingest pipeline: online GPS -> matched -> live store -> caches.

:class:`TrajectoryIngestPipeline` is the write path that keeps the paper's
estimates fresh as vehicles report in:

1. **normalise + match** -- raw GPS input is normalised
   (:func:`~repro.ingest.normalize.normalize_gps_records`) and HMM
   map-matched; unmatchable traces are skipped with a recorded reason
   (or re-raised under ``match_failure_policy="raise"``);
2. **append** -- matched trajectories go into a
   :class:`~repro.trajectories.mutable.MutableTrajectoryStore` with
   incremental inverted-index maintenance (``O(|trajectory|)`` per append);
3. **invalidate** -- each append yields an edge-level dirty set that drives
   *targeted* invalidation of the attached service's result and
   decomposition caches (entries on untouched paths stay hot), with
   optional re-warmup of the dropped keys;
4. **refresh** -- periodically (``auto_refresh_trajectories``) or on
   demand, the hybrid graph is re-instantiated from a store snapshot and
   the service is rebased onto it, making estimates on affected paths
   numerically identical to a cold rebuild from the same data.

Input can be pushed synchronously (:meth:`~TrajectoryIngestPipeline.ingest`,
:meth:`~TrajectoryIngestPipeline.ingest_batch`) or streamed through a
bounded queue drained by worker threads
(:meth:`~TrajectoryIngestPipeline.start` /
:meth:`~TrajectoryIngestPipeline.submit` /
:meth:`~TrajectoryIngestPipeline.stop`); the bounded queue gives
backpressure under bursty input instead of unbounded memory growth.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import Counter, deque
from typing import TYPE_CHECKING, Callable, Iterable

from ..config import IngestParameters
from ..exceptions import IngestError, MapMatchingError, ReproError, TrajectoryError
from ..roadnet.path import Path
from ..service.requests import EstimateRequest
from ..trajectories.gps import Trajectory
from ..trajectories.matched import MatchedTrajectory
from ..trajectories.mutable import MutableTrajectoryStore
from .normalize import normalize_gps_records
from .results import (
    REASON_ERROR,
    REASON_INVALID,
    REASON_TOO_FEW_RECORDS,
    REASON_UNMATCHABLE,
    IngestReport,
    IngestResult,
    IngestStats,
    RefreshReport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.hybrid_graph import HybridGraph
    from ..core.instantiation import HybridGraphBuilder
    from ..service.service import CostEstimationService, InvalidationReport
    from ..trajectories.mapmatching import HMMMapMatcher

#: Placed on the queue once per worker to shut streaming mode down.
_SENTINEL = object()


def _item_id(item) -> int:
    """Best-effort trajectory id of any ingest input shape (for skip records)."""
    if isinstance(item, tuple) and item:
        try:
            return int(item[0])
        except (TypeError, ValueError):
            return -1
    return getattr(item, "trajectory_id", -1)


class TrajectoryIngestPipeline:
    """Online trajectory ingestion with live store and cache maintenance.

    Parameters
    ----------
    store:
        The mutable store appends go into.  May start empty.
    matcher:
        HMM map matcher for raw GPS input.  Optional: a pipeline fed only
        pre-matched trajectories (e.g. from an upstream matching tier)
        does not need one.
    service:
        The estimation service whose caches track the store.  Optional: a
        detached pipeline just maintains the store.
    builder_factory:
        Zero-argument callable returning a *fresh*
        :class:`~repro.core.instantiation.HybridGraphBuilder`; required for
        :meth:`refresh`.  A fresh builder per refresh matters: it makes the
        rebuilt graph identical to a cold build from the same snapshot
        (the builder's internal RNG is consumed during a build).
    parameters:
        :class:`~repro.config.IngestParameters`; defaults apply when
        ``None``.
    """

    def __init__(
        self,
        store: MutableTrajectoryStore,
        matcher: "HMMMapMatcher | None" = None,
        service: "CostEstimationService | None" = None,
        builder_factory: "Callable[[], HybridGraphBuilder] | None" = None,
        parameters: IngestParameters | None = None,
    ) -> None:
        if not isinstance(store, MutableTrajectoryStore):
            raise IngestError(
                "the ingest pipeline needs a MutableTrajectoryStore, got "
                f"{type(store).__name__}"
            )
        self.store = store
        self.matcher = matcher
        self.service = service
        self.parameters = parameters or IngestParameters()
        self._builder_factory = builder_factory
        # Commit lock: serialises append + invalidate + counter updates so
        # stats stay consistent across queue workers.  Reentrant because a
        # commit can trigger an auto-refresh.
        self._lock = threading.RLock()
        self._queue: queue.Queue | None = None
        self._workers: list[threading.Thread] = []
        # Counters (all guarded by the commit lock).
        self._submitted = 0
        self._accepted = 0
        self._skip_reasons: Counter[str] = Counter()
        self._recent_skips: deque[IngestResult] = deque(maxlen=64)
        self._pending_dirty: set[int] = set()
        self._since_refresh = 0
        self._invalidated_results = 0
        self._invalidated_decompositions = 0
        self._invalidated_routes = 0
        self._rewarmed = 0
        self._refreshes = 0

    # ------------------------------------------------------------------ #
    # Synchronous ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, item: "MatchedTrajectory | Trajectory | tuple") -> IngestResult:
        """Ingest one trajectory and apply its effects immediately.

        ``item`` may be a :class:`MatchedTrajectory` (append directly), a
        :class:`Trajectory` (map-match first), or a ``(trajectory_id,
        gps_records)`` pair (normalise messy records, then match).
        """
        with self._lock:
            self._submitted += 1
        matched, skip = self._prepare(item)
        if skip is not None:
            return skip
        dirty, _invalidation, _rewarmed = self._commit([matched])
        return IngestResult(
            trajectory_id=matched.trajectory_id,
            accepted=True,
            dirty_edges=frozenset(dirty),
            matched=matched,
        )

    def ingest_batch(self, items: Iterable["MatchedTrajectory | Trajectory | tuple"]) -> IngestReport:
        """Ingest a batch, committing all appends under one invalidation pass.

        Batching amortises the cache scan: the union of the batch's dirty
        sets is applied once instead of per trajectory.
        """
        started = time.perf_counter()
        results: list[IngestResult | None] = []
        matched_batch: list[MatchedTrajectory] = []
        for item in items:
            with self._lock:
                self._submitted += 1
            matched, skip = self._prepare(item)
            if skip is not None:
                results.append(skip)
                continue
            matched_batch.append(matched)
            results.append(None)  # placeholder, filled after the commit
        dirty: set[int] = set()
        invalidation = None
        rewarmed = 0
        if matched_batch:
            dirty, invalidation, rewarmed = self._commit(matched_batch)
        accepted = iter(matched_batch)
        for index, result in enumerate(results):
            if result is None:
                matched = next(accepted)
                results[index] = IngestResult(
                    trajectory_id=matched.trajectory_id,
                    accepted=True,
                    dirty_edges=frozenset(matched.edge_ids),
                    matched=matched,
                )
        return IngestReport(
            results=tuple(results),
            dirty_edges=frozenset(dirty),
            invalidation=invalidation,
            rewarmed=rewarmed,
            duration_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # Streaming ingestion (bounded queue + workers)
    # ------------------------------------------------------------------ #
    def start(self) -> "TrajectoryIngestPipeline":
        """Spawn the worker threads that drain the submission queue."""
        if self._workers:
            raise IngestError("the pipeline is already started")
        self._queue = queue.Queue(maxsize=self.parameters.queue_capacity)
        for index in range(self.parameters.n_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"ingest-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    def submit(
        self,
        item: "MatchedTrajectory | Trajectory | tuple",
        block: bool = True,
        timeout: float | None = None,
    ) -> bool:
        """Enqueue one item for the workers; ``False`` if the queue stayed full.

        With ``block=True`` (the default) a full queue applies
        backpressure: the caller waits until a worker frees a slot.
        """
        if self._queue is None:
            raise IngestError("streaming mode is not started; call start() or use ingest()")
        try:
            self._queue.put(item, block=block, timeout=timeout)
        except queue.Full:
            return False
        with self._lock:
            self._submitted += 1
        return True

    def drain(self) -> None:
        """Block until every submitted item has been fully processed."""
        if self._queue is not None:
            self._queue.join()

    def stop(self, drain: bool = True) -> None:
        """Stop streaming mode (optionally draining the backlog first)."""
        if not self._workers:
            return
        if drain:
            self.drain()
        assert self._queue is not None
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join()
        self._workers = []
        self._queue = None

    def __enter__(self) -> "TrajectoryIngestPipeline":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                try:
                    # allow_raise=False: in streaming mode, match failures
                    # are always recorded under their real reason -- there
                    # is no caller to re-raise to on a worker thread.
                    matched, skip = self._prepare(item, allow_raise=False)
                    if matched is not None:
                        self._commit([matched])
                except Exception as error:
                    # A streamed item must never kill a worker (a dead
                    # worker strands the queue and deadlocks drain()):
                    # record anything unexpected and move on.
                    self._record_skip(
                        IngestResult(
                            trajectory_id=_item_id(item),
                            accepted=False,
                            reason=REASON_ERROR,
                            detail=f"{type(error).__name__}: {error}",
                        )
                    )
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------ #
    # Refresh: rebuild the hybrid graph, rebase the service
    # ------------------------------------------------------------------ #
    def refresh(self) -> RefreshReport:
        """Re-instantiate the hybrid graph from a store snapshot and rebase.

        After a refresh, service estimates on paths touched since the last
        refresh are numerically identical to a cold rebuild from the same
        data: the builder is freshly constructed (same seed, fresh RNG),
        the snapshot is a consistent point-in-time view, and every stale
        cache entry intersecting the accumulated dirty set is dropped.
        Entries on untouched paths are kept -- their observation sets did
        not change.
        """
        if self.service is None or self._builder_factory is None:
            raise IngestError("refresh() needs both a service and a builder_factory")
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> RefreshReport:
        started = time.perf_counter()
        snapshot = self.store.snapshot()
        graph = self._builder_factory().build(snapshot)
        dirty = frozenset(self._pending_dirty)
        self._pending_dirty.clear()
        self._since_refresh = 0
        invalidation = self.service.rebase(graph, dirty_edges=dirty)
        self._record_invalidation(invalidation)
        rewarmed = 0
        if self.parameters.rewarm_invalidated and invalidation.result_keys:
            rewarmed = self._rewarm(invalidation.result_keys)
        self._refreshes += 1
        return RefreshReport(
            store_version=snapshot.version,
            n_trajectories=len(snapshot),
            n_variables=graph.num_variables(),
            dirty_edges=dirty,
            invalidation=invalidation,
            rewarmed=rewarmed,
            duration_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> IngestStats:
        """A consistent snapshot of the pipeline's counters."""
        with self._lock:
            skipped = sum(self._skip_reasons.values())
            return IngestStats(
                submitted=self._submitted,
                accepted=self._accepted,
                skipped=skipped,
                skip_reasons=dict(self._skip_reasons),
                backlog=self._queue.qsize() if self._queue is not None else 0,
                store_version=self.store.version,
                pending_dirty_edges=len(self._pending_dirty),
                invalidated_results=self._invalidated_results,
                invalidated_decompositions=self._invalidated_decompositions,
                invalidated_routes=self._invalidated_routes,
                rewarmed=self._rewarmed,
                refreshes=self._refreshes,
            )

    def recent_skips(self) -> list[IngestResult]:
        """The most recent skipped items, oldest first (bounded window)."""
        with self._lock:
            return list(self._recent_skips)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _prepare(
        self, item: "MatchedTrajectory | Trajectory | tuple", allow_raise: bool = True
    ) -> tuple[MatchedTrajectory | None, IngestResult | None]:
        """Normalise and map-match one input item.

        Returns ``(matched, None)`` on success, ``(None, skip_result)``
        when the item was skipped.  ``allow_raise=False`` (streaming mode)
        records match failures even under the ``"raise"`` policy.
        """
        if isinstance(item, MatchedTrajectory):
            return item, None
        if isinstance(item, tuple):
            if len(item) != 2:
                raise IngestError(
                    "raw-record input must be a (trajectory_id, gps_records) pair"
                )
            trajectory_id, records = item
            try:
                trajectory_id = int(trajectory_id)
            except (TypeError, ValueError):
                raise IngestError(
                    f"trajectory id must be an integer, got {trajectory_id!r}"
                ) from None
            try:
                gps = normalize_gps_records(
                    trajectory_id, records, self.parameters.min_gps_records
                )
            except TrajectoryError as error:
                return None, self._skip(trajectory_id, REASON_TOO_FEW_RECORDS, error, allow_raise)
        elif isinstance(item, Trajectory):
            gps = item
            if len(gps) < self.parameters.min_gps_records:
                return None, self._skip(
                    gps.trajectory_id,
                    REASON_TOO_FEW_RECORDS,
                    TrajectoryError(
                        f"trajectory {gps.trajectory_id} has {len(gps)} GPS records, "
                        f"need at least {self.parameters.min_gps_records}"
                    ),
                    allow_raise,
                )
        else:
            raise IngestError(
                "cannot ingest a "
                f"{type(item).__name__}: expected MatchedTrajectory, Trajectory, "
                "or a (trajectory_id, gps_records) pair"
            )
        if self.matcher is None:
            raise IngestError("raw GPS input needs a map matcher; construct the pipeline with one")
        try:
            matched = self.matcher.match(gps)
        except MapMatchingError as error:
            return None, self._skip(gps.trajectory_id, REASON_UNMATCHABLE, error, allow_raise)
        except TrajectoryError as error:
            return None, self._skip(gps.trajectory_id, REASON_INVALID, error, allow_raise)
        return matched, None

    def _skip(
        self, trajectory_id: int, reason: str, error: ReproError, allow_raise: bool = True
    ) -> IngestResult:
        if allow_raise and self.parameters.match_failure_policy == "raise":
            raise error
        result = IngestResult(
            trajectory_id=trajectory_id, accepted=False, reason=reason, detail=str(error)
        )
        self._record_skip(result)
        return result

    def _record_skip(self, result: IngestResult) -> None:
        with self._lock:
            self._skip_reasons[result.reason or REASON_ERROR] += 1
            self._recent_skips.append(result)

    def _commit(
        self, matched_batch: list[MatchedTrajectory]
    ) -> tuple[set[int], "InvalidationReport | None", int]:
        """Append a batch and apply its cache effects atomically."""
        with self._lock:
            dirty = self.store.append_many(matched_batch)
            self._accepted += len(matched_batch)
            self._pending_dirty |= dirty
            self._since_refresh += len(matched_batch)
            invalidation = None
            rewarmed = 0
            if self.service is not None and self.parameters.invalidate_on_append and dirty:
                invalidation = self.service.invalidate_edges(dirty)
                self._record_invalidation(invalidation)
                if self.parameters.rewarm_invalidated and invalidation.result_keys:
                    rewarmed = self._rewarm(invalidation.result_keys)
            if (
                self.parameters.auto_refresh_trajectories
                and self._since_refresh >= self.parameters.auto_refresh_trajectories
                and self.service is not None
                and self._builder_factory is not None
            ):
                self._refresh_locked()
            return dirty, invalidation, rewarmed

    def _record_invalidation(self, invalidation: "InvalidationReport") -> None:
        self._invalidated_results += len(invalidation.result_keys)
        self._invalidated_decompositions += len(invalidation.decomposition_keys)
        self._invalidated_routes += len(invalidation.route_keys)

    def _rewarm(self, result_keys: tuple) -> int:
        """Recompute recently invalidated result-cache entries.

        Keys encode ``(path edge ids, alpha-interval index, method)``; the
        interval midpoint stands in for the original departure time (the
        cache buckets by interval, so the key maps back exactly).
        """
        assert self.service is not None
        width_s = self.service.alpha_minutes * 60.0
        requests = [
            EstimateRequest(
                path=Path(list(edge_ids)),
                departure_time_s=(interval_index + 0.5) * width_s,
                method=method,
            )
            for edge_ids, interval_index, method in result_keys[: self.parameters.max_rewarm_keys]
        ]
        self.service.submit_batch(requests)
        with self._lock:
            self._rewarmed += len(requests)
        return len(requests)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        stats = self.stats()
        return (
            f"TrajectoryIngestPipeline(accepted={stats.accepted}, "
            f"skipped={stats.skipped}, backlog={stats.backlog}, "
            f"store_version={stats.store_version})"
        )
