"""Typed results, reports, and statistics for the ingest pipeline.

Every unit of streamed input produces an :class:`IngestResult` -- accepted
(with the edge-level dirty set it contributed) or skipped (with a machine
readable reason).  Batch submissions aggregate into an
:class:`IngestReport`; hybrid-graph refreshes into a
:class:`RefreshReport`; and :meth:`TrajectoryIngestPipeline.stats` returns
point-in-time :class:`IngestStats` snapshots for operators, mirroring the
service's cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.service import InvalidationReport
    from ..trajectories.matched import MatchedTrajectory

#: The GPS trace had fewer than ``min_gps_records`` usable records after
#: normalisation (single-point traces, all-duplicate timestamps, ...).
REASON_TOO_FEW_RECORDS = "too-few-gps-records"

#: HMM map matching failed: no candidate edges within the search radius
#: (points far off-network) or no connected candidate sequence.
REASON_UNMATCHABLE = "map-matching-failed"

#: The input was structurally invalid (malformed records, negative costs...).
REASON_INVALID = "invalid-trajectory"

#: An unexpected library error while processing a streamed item (recorded
#: by queue workers so a poisoned input never kills the pipeline).
REASON_ERROR = "ingest-error"


@dataclass(frozen=True)
class IngestResult:
    """The outcome of ingesting one trajectory."""

    trajectory_id: int
    accepted: bool
    #: One of the ``REASON_*`` constants when skipped, ``None`` when accepted.
    reason: str | None = None
    #: Human-readable detail (usually the underlying exception message).
    detail: str | None = None
    #: Edges the accepted trajectory traversed (empty when skipped).
    dirty_edges: frozenset[int] = frozenset()
    matched: "MatchedTrajectory | None" = None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        if self.accepted:
            return f"IngestResult({self.trajectory_id}, accepted, {len(self.dirty_edges)} edges)"
        return f"IngestResult({self.trajectory_id}, skipped: {self.reason})"


@dataclass(frozen=True)
class IngestReport:
    """The outcome of a batch ingest pass."""

    results: tuple[IngestResult, ...]
    #: Union of the accepted trajectories' dirty sets.
    dirty_edges: frozenset[int]
    #: The targeted cache invalidation this batch triggered (``None`` when
    #: no service is attached or nothing was accepted).
    invalidation: "InvalidationReport | None"
    rewarmed: int
    duration_s: float

    @property
    def n_accepted(self) -> int:
        return sum(1 for result in self.results if result.accepted)

    @property
    def n_skipped(self) -> int:
        return len(self.results) - self.n_accepted

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"IngestReport(accepted={self.n_accepted}, skipped={self.n_skipped}, "
            f"dirty_edges={len(self.dirty_edges)}, {self.duration_s:.3f}s)"
        )


@dataclass(frozen=True)
class RefreshReport:
    """The outcome of a hybrid-graph refresh (rebuild + service rebase)."""

    store_version: int
    n_trajectories: int
    n_variables: int
    dirty_edges: frozenset[int]
    invalidation: "InvalidationReport"
    rewarmed: int
    duration_s: float

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RefreshReport(version={self.store_version}, "
            f"trajectories={self.n_trajectories}, variables={self.n_variables}, "
            f"dirty_edges={len(self.dirty_edges)}, {self.duration_s:.2f}s)"
        )


@dataclass(frozen=True)
class SnapshotReport:
    """The outcome of persisting the pipeline's state (:mod:`repro.persist`).

    ``kind`` is ``"full"`` for a complete snapshot or ``"delta"`` when only
    the variables touching the dirty-edge set accumulated since the last
    snapshot (plus the appended store segment) were written.
    """

    path: str
    kind: str
    #: The ingest epoch (store version) the snapshot captures.
    epoch: int
    n_trajectories: int
    #: Variables written into this snapshot (all of them for a full
    #: snapshot; only dirty-path variables for a delta).
    n_variables_written: int
    #: Dirty edges the snapshot covered (empty for full snapshots).
    dirty_edges: frozenset[int]
    duration_s: float

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SnapshotReport({self.kind}, epoch={self.epoch}, "
            f"variables={self.n_variables_written}, "
            f"trajectories={self.n_trajectories}, {self.duration_s:.3f}s)"
        )


@dataclass(frozen=True)
class IngestStats:
    """A point-in-time snapshot of the pipeline's counters."""

    #: Items handed to the pipeline (``ingest`` + ``submit`` calls).
    submitted: int
    #: Trajectories matched and appended to the store.
    accepted: int
    #: Items skipped, by ``REASON_*`` bucket.
    skipped: int
    skip_reasons: dict[str, int] = field(default_factory=dict)
    #: Items sitting in the streaming queue, not yet processed.
    backlog: int = 0
    store_version: int = 0
    #: Dirty edges accumulated since the last hybrid-graph refresh.
    pending_dirty_edges: int = 0
    invalidated_results: int = 0
    invalidated_decompositions: int = 0
    #: Cached routes evicted because their path crossed a dirty edge.
    invalidated_routes: int = 0
    rewarmed: int = 0
    refreshes: int = 0
    #: Snapshots written (full + delta) via :mod:`repro.persist`.
    snapshots: int = 0

    @property
    def match_failure_rate(self) -> float:
        """Fraction of processed items that were skipped (0.0 when idle)."""
        processed = self.accepted + self.skipped
        if processed == 0:
            return 0.0
        return self.skipped / processed

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"IngestStats(submitted={self.submitted}, accepted={self.accepted}, "
            f"skipped={self.skipped}, backlog={self.backlog}, "
            f"refreshes={self.refreshes}, version={self.store_version})"
        )
