"""Normalisation of ingest-shaped GPS input.

Real probe streams are messy: devices repeat fixes, buffer and flush out of
order, and occasionally emit a single point.  :class:`~repro.trajectories.gps.Trajectory`
deliberately rejects all of that (strictly increasing timestamps, at least
two records) -- this module is the tolerant front door that turns raw
records into a valid ``Trajectory`` where possible and raises
:class:`~repro.exceptions.TrajectoryError` with a precise message where
not, so the pipeline can skip with a recorded reason instead of crashing.
"""

from __future__ import annotations

from typing import Iterable

from ..exceptions import TrajectoryError
from ..trajectories.gps import GPSRecord, Trajectory


def normalize_gps_records(
    trajectory_id: int,
    records: Iterable[GPSRecord],
    min_records: int = 2,
) -> Trajectory:
    """Build a valid :class:`Trajectory` from possibly messy GPS records.

    * records are sorted by timestamp (out-of-order flushes are reordered);
    * of several records sharing a timestamp, the first wins (duplicate
      fixes are dropped);
    * raises :class:`TrajectoryError` when fewer than ``min_records``
      usable records remain (e.g. single-point traces).
    """
    ordered = sorted(records, key=lambda record: record.time_s)
    kept: list[GPSRecord] = []
    for record in ordered:
        if kept and record.time_s <= kept[-1].time_s:
            continue
        kept.append(record)
    if len(kept) < min_records:
        raise TrajectoryError(
            f"trajectory {trajectory_id} has {len(kept)} usable GPS records "
            f"after normalisation, need at least {min_records}"
        )
    return Trajectory(trajectory_id, kept)
