"""Streaming trajectory ingestion (the system's write path).

The second subsystem next to :mod:`repro.service`: where the service is
the *read* path (cached, batched, precomputed estimates), this package is
the *write* path that keeps those estimates fresh as new GPS data arrives:

* :class:`TrajectoryIngestPipeline` -- normalise raw GPS, HMM map-match,
  append into a mutable store, invalidate exactly the service cache
  entries the new data can affect, and periodically re-instantiate the
  hybrid graph;
* :func:`normalize_gps_records` -- the tolerant front door for
  ingest-shaped input (out-of-order / duplicate timestamps, single-point
  traces);
* :class:`IngestResult` / :class:`IngestReport` / :class:`RefreshReport` /
  :class:`IngestStats` -- typed outcomes and operator statistics.

The mutable store itself lives with its siblings in
:mod:`repro.trajectories` (:class:`MutableTrajectoryStore`,
:class:`TrajectorySnapshot`) and is re-exported here for convenience.
"""

from ..trajectories.mutable import MutableTrajectoryStore, TrajectorySnapshot
from .normalize import normalize_gps_records
from .pipeline import TrajectoryIngestPipeline
from .results import (
    REASON_ERROR,
    REASON_INVALID,
    REASON_TOO_FEW_RECORDS,
    REASON_UNMATCHABLE,
    IngestReport,
    IngestResult,
    IngestStats,
    RefreshReport,
    SnapshotReport,
)

__all__ = [
    "IngestReport",
    "IngestResult",
    "IngestStats",
    "MutableTrajectoryStore",
    "REASON_ERROR",
    "REASON_INVALID",
    "REASON_TOO_FEW_RECORDS",
    "REASON_UNMATCHABLE",
    "RefreshReport",
    "SnapshotReport",
    "TrajectoryIngestPipeline",
    "TrajectorySnapshot",
    "normalize_gps_records",
]
