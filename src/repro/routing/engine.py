"""Batched best-first stochastic routing on the service substrate.

:class:`RoutingEngine` answers the paper's Figure 18 workload -- find the
source-target path with the highest probability of arriving within a
travel-time budget -- but replaces the legacy per-path depth-first inner
loop with frontier expansion evaluated in *batches*:

1. pop up to ``batch_size`` frontier paths, ordered best-first by their
   parent's optimistic budget-pruning bound;
2. estimate all of them at once -- through
   :meth:`~repro.service.CostEstimationService.estimate_batch` when the
   estimator is the service (dedup + LRU caches + decomposition reuse for
   shared prefixes), or an :class:`.IncrementalCostEstimator` prefix-reuse
   loop for a plain estimator;
3. score the whole batch's budget-pruning bounds with a single
   :func:`repro.histograms.kernels.batch_cdf` kernel call instead of one
   scalar ``prob_at_most`` lookup per path.

Pruning is the same admissible rule the depth-first router uses: the
probability that a partial path plus a free-flow lower bound on the
remaining distance meets the budget is an upper bound on any completion's
probability, so a candidate whose bound falls below the caller's
``probability_threshold`` (or strictly below an already-found best, where a
tie cannot improve the answer) is discarded.  The free-flow bounds come
from a shared :class:`~repro.roadnet.routing.ReverseBoundsIndex`, computed
once per (network, target) and reused across queries.

The paper's LB-DFS / HP-DFS / OD-DFS comparison still works unchanged: the
estimator is pluggable, and :class:`~repro.routing.DFSStochasticRouter`
remains as a thin compatibility wrapper over this engine (keeping its
original depth-first loop available as a reference implementation pinned by
the equivalence property suite).
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..config import _valid_method_name
from ..exceptions import RoutingError
from ..histograms import kernels
from ..roadnet.graph import RoadNetwork
from ..roadnet.path import Path
from ..roadnet.routing import ReverseBoundsIndex
from .incremental import IncrementalCostEstimator
from .queries import SupportsEstimate


@dataclass(frozen=True)
class RouteResult:
    """The outcome of a stochastic route search.

    ``truncated`` distinguishes "no path meets the budget" (the search
    exhausted every candidate) from "the search gave up": it is ``True``
    when the expansion limit was hit while unexplored candidates remained,
    so the reported best (or the absence of one) is not exhaustive.
    """

    path: Path | None
    probability: float
    paths_evaluated: int
    elapsed_s: float
    truncated: bool = False

    @property
    def found(self) -> bool:
        return self.path is not None


@dataclass(frozen=True)
class RouteRequest:
    """One stochastic routing query submitted to the estimation service.

    Attributes
    ----------
    source, target:
        Vertex ids; must differ.
    departure_time_s, budget_s:
        Departure time (seconds since midnight) and travel-time budget.
    method:
        Per-request estimation method override (``"OD"``, ``"OD-<k>"``,
        ``"RD"``); ``None`` uses the service's default method.
    probability_threshold:
        Candidates whose optimistic bound falls below this are discarded;
        a route is only reported when its probability is at least this.
    max_path_edges, max_expansions:
        Per-request overrides of the engine's search limits (``None``
        keeps the engine defaults).
    """

    source: int
    target: int
    departure_time_s: float
    budget_s: float
    method: str | None = None
    probability_threshold: float = 0.0
    max_path_edges: int | None = None
    max_expansions: int | None = None

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise RoutingError("source and target must differ")
        if not math.isfinite(self.departure_time_s):
            raise RoutingError(f"departure_time_s must be finite, got {self.departure_time_s}")
        if not self.budget_s > 0:
            raise RoutingError("budget_s must be positive")
        if self.method is not None and not _valid_method_name(self.method):
            raise RoutingError(
                f"method must be 'OD', 'OD-<k>' or 'RD', got {self.method!r}"
            )
        if not 0.0 <= self.probability_threshold <= 1.0:
            raise RoutingError("probability_threshold must be in [0, 1]")
        if self.max_path_edges is not None and self.max_path_edges < 1:
            raise RoutingError("max_path_edges must be >= 1")
        if self.max_expansions is not None and self.max_expansions < 1:
            raise RoutingError("max_expansions must be >= 1")

    def resolved_method(self, default_method: str) -> str:
        """The concrete estimation method this request should run under."""
        return self.method if self.method is not None else default_method


@dataclass(frozen=True)
class RouteResponse:
    """A served route plus metadata about how it was produced.

    ``source`` is ``"route-cache"`` when the bounded route cache answered,
    ``"computed"`` when the engine ran the search.
    """

    request: RouteRequest
    result: RouteResult
    method: str
    cache_hit: bool
    source: str
    latency_s: float

    @property
    def found(self) -> bool:
        return self.result.found

    @property
    def path(self) -> Path | None:
        return self.result.path

    @property
    def probability(self) -> float:
        return self.result.probability

    @property
    def truncated(self) -> bool:
        return self.result.truncated

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RouteResponse({self.request.source}->{self.request.target}, "
            f"found={self.found}, p={self.probability:.3f}, source={self.source}, "
            f"latency={self.latency_s * 1e3:.2f}ms)"
        )


class RoutingEngine:
    """Best-first stochastic routing with batched estimation and pruning.

    Parameters
    ----------
    network:
        The road network searched over.
    estimator:
        Anything with ``estimate(path, departure_time_s)``.  When it also
        exposes ``estimate_batch`` (the
        :class:`~repro.service.CostEstimationService` does), each frontier
        batch is estimated in one deduplicated, cached call; a plain
        estimator is wrapped in an :class:`.IncrementalCostEstimator`
        (unless ``use_incremental=False``) so shared prefixes are reused.
    max_path_edges, probability_threshold, batch_size, max_expansions:
        Search limits; ``batch_size`` is how many frontier paths are
        estimated and bound-scored per kernel call.
    bounds_index:
        A shared :class:`~repro.roadnet.routing.ReverseBoundsIndex`; built
        on demand when ``None``.  Passing one lets several engines (or an
        engine plus the compatibility DFS wrapper) share per-target bounds.
    """

    def __init__(
        self,
        network: RoadNetwork,
        estimator: SupportsEstimate,
        max_path_edges: int = 40,
        probability_threshold: float = 0.0,
        batch_size: int = 16,
        max_expansions: int = 20000,
        use_incremental: bool = True,
        bounds_index: ReverseBoundsIndex | None = None,
    ) -> None:
        if max_path_edges < 1:
            raise RoutingError("max_path_edges must be >= 1")
        if not 0.0 <= probability_threshold <= 1.0:
            raise RoutingError("probability_threshold must be in [0, 1]")
        if batch_size < 1:
            raise RoutingError("batch_size must be >= 1")
        if max_expansions < 1:
            raise RoutingError("max_expansions must be >= 1")
        self.network = network
        self.max_path_edges = max_path_edges
        self.probability_threshold = probability_threshold
        self.batch_size = batch_size
        self.max_expansions = max_expansions
        self._use_incremental = use_incremental
        self.estimator = estimator  # the setter applies the wrapping policy
        self.bounds_index = bounds_index if bounds_index is not None else ReverseBoundsIndex(network)
        #: Lifetime counters, updated once per finished search (not per
        #: expansion), so the search loop itself carries no telemetry cost.
        #: Exported as live gauges by
        #: :meth:`~repro.service.CostEstimationService.register_metrics`.
        self._stats_lock = threading.Lock()
        self.searches = 0
        self.expansions_total = 0
        self.truncations = 0

    @property
    def estimator(self) -> SupportsEstimate:
        return self._estimator

    @estimator.setter
    def estimator(self, estimator: SupportsEstimate) -> None:
        """Swap the estimator, re-applying the batch/incremental wrapping policy."""
        self._batch_estimate = getattr(estimator, "estimate_batch", None)
        if (
            self._batch_estimate is None
            and self._use_incremental
            and not isinstance(estimator, IncrementalCostEstimator)
        ):
            estimator = IncrementalCostEstimator(estimator)
        self._estimator: SupportsEstimate = estimator

    # ------------------------------------------------------------------ #
    def _estimate_paths(self, paths: list[Path], departure_time_s: float, method: str | None):
        """Cost estimates for a frontier batch, in input order."""
        if self._batch_estimate is not None:
            if method is not None:
                return self._batch_estimate(paths, departure_time_s, method=method)
            return self._batch_estimate(paths, departure_time_s)
        if method is not None:
            raise RoutingError(
                "per-request methods need an estimator with estimate_batch "
                "(e.g. a CostEstimationService)"
            )
        return [self.estimator.estimate(path, departure_time_s) for path in paths]

    def route(self, request: RouteRequest) -> RouteResult:
        """Answer a :class:`RouteRequest` (convenience over :meth:`find_route`)."""
        return self.find_route(
            request.source,
            request.target,
            request.departure_time_s,
            request.budget_s,
            method=request.method,
            probability_threshold=request.probability_threshold,
            max_path_edges=request.max_path_edges,
            max_expansions=request.max_expansions,
        )

    def find_route(
        self,
        source: int,
        target: int,
        departure_time_s: float,
        budget_s: float,
        *,
        method: str | None = None,
        probability_threshold: float | None = None,
        max_path_edges: int | None = None,
        max_expansions: int | None = None,
    ) -> RouteResult:
        """Find the source-target path with the highest P(travel time <= budget)."""
        if source == target:
            raise RoutingError("source and target must differ")
        if budget_s <= 0:
            raise RoutingError("budget_s must be positive")
        threshold = (
            self.probability_threshold if probability_threshold is None else probability_threshold
        )
        if not 0.0 <= threshold <= 1.0:
            raise RoutingError("probability_threshold must be in [0, 1]")
        limit_edges = self.max_path_edges if max_path_edges is None else max_path_edges
        limit_expansions = self.max_expansions if max_expansions is None else max_expansions
        if limit_edges < 1 or limit_expansions < 1:
            raise RoutingError("max_path_edges and max_expansions must be >= 1")

        started = time.perf_counter()
        if isinstance(self._estimator, IncrementalCostEstimator):
            # A fresh incremental cache per query keeps answers a pure
            # function of the query: the staleness-bounded extension
            # approximation then depends only on a path's own ancestor
            # chain, never on which queries happened to run earlier.
            self._estimator.clear()
        bounds = self.bounds_index.bounds_to(target)
        if source not in bounds:
            with self._stats_lock:
                self.searches += 1
            return RouteResult(None, 0.0, 0, time.perf_counter() - started)

        best_path: Path | None = None
        best_probability = 0.0
        paths_evaluated = 0
        expansions = 0
        truncated = False
        counter = 0

        # Best-first frontier: (-parent bound, remaining free-flow, tiebreak,
        # edges, visited, head).  The parent's own optimistic bound
        # upper-bounds its extensions, so popping by it expands the most
        # promising candidates first; among equal bounds (common early on,
        # when generous budgets make every bound 1.0) the smaller remaining
        # free-flow distance wins, steering the search toward the target so
        # a first completion -- and with it the pruning cutoff -- is found
        # as quickly as the depth-first reference finds one.
        frontier: list[tuple[float, float, int, tuple[int, ...], frozenset[int], int]] = []
        for edge in self.network.out_edges(source):
            if edge.target in bounds:
                heapq.heappush(
                    frontier,
                    (
                        -1.0,
                        bounds[edge.target],
                        counter,
                        (edge.edge_id,),
                        frozenset((source, edge.target)),
                        edge.target,
                    ),
                )
                counter += 1

        while frontier:
            if expansions >= limit_expansions:
                truncated = True
                break
            # ---- pop a batch of the most promising frontier paths. ----- #
            batch: list[tuple[tuple[int, ...], frozenset[int], int]] = []
            while frontier and len(batch) < self.batch_size and expansions < limit_expansions:
                neg_bound, _, _, edge_ids, visited, vertex = heapq.heappop(frontier)
                parent_bound = -neg_bound
                # Pop-time prune by the *parent's* bound against the best
                # found since this entry was pushed.  Sound under the same
                # per-prefix admissibility assumption the classic prune
                # below (and the reference DFS) already relies on: every
                # completion in a prefix's subtree scores at most the
                # prefix's bound, and this path's subtree is contained in
                # its parent's.  It saves estimating frontier entries whose
                # whole subtree is already beaten -- in particular, once a
                # probability-1.0 route is found the remaining frontier
                # drains without another estimator call.  (Zero/threshold
                # checks already ran at push time.)
                if best_path is not None and parent_bound <= best_probability:
                    continue
                batch.append((edge_ids, visited, vertex))
                expansions += 1
            if not batch:
                continue

            # ---- one batched estimate + one batched bound kernel. ------ #
            paths = [Path(edge_ids) for edge_ids, _, _ in batch]
            estimates = self._estimate_paths(paths, departure_time_s, method)
            paths_evaluated += len(batch)
            values = np.array([budget_s - bounds[vertex] for _, _, vertex in batch])
            optimistic = kernels.batch_cdf(
                [estimate.histogram.as_triple() for estimate in estimates], values
            )

            # ---- prune / complete / expand. ---------------------------- #
            for (edge_ids, visited, vertex), path, bound in zip(batch, paths, optimistic):
                bound = float(bound)
                # A zero bound is hopeless regardless of any best found so
                # far: no completion in this subtree can report a positive
                # probability, so the subtree is dropped outright (this is
                # what keeps infeasible-budget queries cheap).
                if bound <= 0.0 or bound < threshold:
                    continue
                if best_path is not None and bound <= best_probability:
                    continue
                if vertex == target:
                    # The target's free-flow bound is zero, so the bound
                    # already *is* P(cost <= budget).
                    if best_path is None or bound > best_probability:
                        best_path = path
                        best_probability = bound
                    continue
                if len(edge_ids) >= limit_edges:
                    continue
                for edge in self.network.out_edges(vertex):
                    if edge.target in visited or edge.target not in bounds:
                        continue
                    heapq.heappush(
                        frontier,
                        (
                            -bound,
                            bounds[edge.target],
                            counter,
                            edge_ids + (edge.edge_id,),
                            visited | {edge.target},
                            edge.target,
                        ),
                    )
                    counter += 1

        elapsed = time.perf_counter() - started
        probability = best_probability if best_path is not None else 0.0
        with self._stats_lock:
            self.searches += 1
            self.expansions_total += expansions
            self.truncations += int(truncated)
        return RouteResult(best_path, probability, paths_evaluated, elapsed, truncated)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RoutingEngine({self.network.name!r}, batch_size={self.batch_size}, "
            f"max_path_edges={self.max_path_edges}, max_expansions={self.max_expansions})"
        )
