"""Incremental path cost estimation for "path + another edge" exploration.

Stochastic routing algorithms repeatedly extend a candidate path by one
edge and re-evaluate its cost distribution (Section 4.3).  The incremental
estimator wraps any path cost estimator with

* a **bounded memoisation cache** keyed by the path's edge sequence, so the
  many shared prefixes a route search revisits are only estimated once.
  The cache reuses the service's LRU policy
  (:class:`~repro.service.cache.LRUCache`): capacity-bounded with
  least-recently-used eviction, so a long-running search -- or an engine
  reusing one estimator across many queries -- keeps a flat memory
  footprint instead of growing without bound;
* a cheap **extension rule**: when a cached prefix estimate exists, the
  extension's distribution is obtained by convolving the prefix's cost
  histogram with the new edge's unit distribution -- a single vectorised
  kernel call (:func:`repro.histograms.kernels.convolve`) on the array
  layout, no per-bucket Python loop.  The full (dependency aware) estimate
  is recomputed lazily every ``refresh_every`` extensions, so the accuracy
  stays close to the wrapped estimator while the per-edge work during
  search stays small.

Extended estimates carry their prefix's entropy and step timings forward
(tagged with an ``"inc"`` timing entry for the extension itself), so
downstream reporting never sees a ``NaN`` entropy it cannot distinguish
from a real value.
"""

from __future__ import annotations

import time

from ..config import EstimatorParameters
from ..exceptions import RoutingError
from ..roadnet.path import Path
from ..timeutil import interval_of
from ..core.estimator import CostEstimate
from ..core.hybrid_graph import HybridGraph


class IncrementalCostEstimator:
    """Caches and incrementally extends path cost estimates during route search."""

    def __init__(
        self,
        estimator,
        hybrid_graph: HybridGraph | None = None,
        refresh_every: int = 4,
        cache_capacity: int = 4096,
    ) -> None:
        if refresh_every < 1:
            raise RoutingError("refresh_every must be >= 1")
        if cache_capacity < 1:
            raise RoutingError("cache_capacity must be >= 1")
        # Imported lazily: the service layer imports the routing engine, so
        # a module-level import here would be circular.
        from ..service.cache import LRUCache

        self.estimator = estimator
        self.hybrid_graph = hybrid_graph if hybrid_graph is not None else getattr(
            estimator, "hybrid_graph", None
        )
        self.refresh_every = refresh_every
        self._cache: "LRUCache[tuple[tuple[int, ...], float], tuple[CostEstimate, int]]" = (
            LRUCache(cache_capacity)
        )

    @property
    def parameters(self) -> EstimatorParameters | None:
        return getattr(self.estimator, "parameters", None)

    def clear(self) -> None:
        """Drop all cached estimates."""
        self._cache.clear()

    def estimate(self, path: Path, departure_time_s: float) -> CostEstimate:
        """Estimate ``path``'s cost distribution, reusing cached prefixes when possible."""
        key = (path.edge_ids, departure_time_s)
        cached = self._cache.get(key)
        if cached is not None:
            return cached[0]

        prefix_key = (path.edge_ids[:-1], departure_time_s)
        prefix_cached = self._cache.get(prefix_key) if len(path) > 1 else None
        if (
            prefix_cached is not None
            and self.hybrid_graph is not None
            and prefix_cached[1] + 1 < self.refresh_every
        ):
            estimate = self._extend(prefix_cached[0], path, departure_time_s)
            staleness = prefix_cached[1] + 1
        else:
            estimate = self.estimator.estimate(path, departure_time_s)
            staleness = 0
        self._cache.put(key, (estimate, staleness))
        return estimate

    def _extend(
        self, prefix_estimate: CostEstimate, path: Path, departure_time_s: float
    ) -> CostEstimate:
        """Extend a cached prefix estimate by the path's final edge (convolution)."""
        started = time.perf_counter()
        new_edge = path.edge_ids[-1]
        assert self.hybrid_graph is not None
        parameters = self.hybrid_graph.parameters
        arrival = departure_time_s + prefix_estimate.histogram.mean
        unit = self.hybrid_graph.unit_variable(
            new_edge, interval_of(arrival, parameters.alpha_minutes)
        )
        histogram = prefix_estimate.histogram.convolve(unit.cost_distribution())
        # The extension inherits the prefix's entropy (the convolution step
        # adds no decomposition of its own) and carries the prefix's step
        # timings forward, adding the extension's own cost under "inc".
        elapsed = time.perf_counter() - started
        timings = dict(prefix_estimate.timings_s)
        timings["inc"] = timings.get("inc", 0.0) + elapsed
        timings["total"] = timings.get("total", 0.0) + elapsed
        return CostEstimate(
            path=path,
            departure_time_s=departure_time_s,
            histogram=histogram,
            method=f"{prefix_estimate.method}+inc"
            if not prefix_estimate.method.endswith("+inc")
            else prefix_estimate.method,
            decomposition=None,
            entropy=prefix_estimate.entropy,
            timings_s=timings,
        )

    def cache_size(self) -> int:
        return len(self._cache)

    def cache_capacity(self) -> int:
        return self._cache.capacity
