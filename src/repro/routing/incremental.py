"""Incremental path cost estimation for "path + another edge" exploration.

Stochastic routing algorithms repeatedly extend a candidate path by one
edge and re-evaluate its cost distribution (Section 4.3).  The incremental
estimator wraps any path cost estimator with

* a **memoisation cache** keyed by the path's edge sequence, so the many
  shared prefixes a depth-first search revisits are only estimated once,
  and
* a cheap **extension rule**: when a cached prefix estimate exists, the
  extension's distribution is obtained by convolving the prefix's cost
  histogram with the new edge's unit distribution -- a single vectorised
  kernel call (:func:`repro.histograms.kernels.convolve`) on the array
  layout, no per-bucket Python loop.  The full (dependency aware) estimate
  is recomputed lazily every ``refresh_every`` extensions, so the accuracy
  stays close to the wrapped estimator while the per-edge work during
  search stays small.
"""

from __future__ import annotations

from ..config import EstimatorParameters
from ..exceptions import RoutingError
from ..roadnet.path import Path
from ..timeutil import interval_of
from ..core.estimator import CostEstimate
from ..core.hybrid_graph import HybridGraph


class IncrementalCostEstimator:
    """Caches and incrementally extends path cost estimates during route search."""

    def __init__(
        self,
        estimator,
        hybrid_graph: HybridGraph | None = None,
        refresh_every: int = 4,
    ) -> None:
        if refresh_every < 1:
            raise RoutingError("refresh_every must be >= 1")
        self.estimator = estimator
        self.hybrid_graph = hybrid_graph if hybrid_graph is not None else getattr(
            estimator, "hybrid_graph", None
        )
        self.refresh_every = refresh_every
        self._cache: dict[tuple[tuple[int, ...], float], tuple[CostEstimate, int]] = {}

    @property
    def parameters(self) -> EstimatorParameters | None:
        return getattr(self.estimator, "parameters", None)

    def clear(self) -> None:
        """Drop all cached estimates."""
        self._cache.clear()

    def estimate(self, path: Path, departure_time_s: float) -> CostEstimate:
        """Estimate ``path``'s cost distribution, reusing cached prefixes when possible."""
        key = (path.edge_ids, departure_time_s)
        cached = self._cache.get(key)
        if cached is not None:
            return cached[0]

        prefix_key = (path.edge_ids[:-1], departure_time_s)
        prefix_cached = self._cache.get(prefix_key) if len(path) > 1 else None
        if (
            prefix_cached is not None
            and self.hybrid_graph is not None
            and prefix_cached[1] + 1 < self.refresh_every
        ):
            estimate = self._extend(prefix_cached[0], path, departure_time_s)
            staleness = prefix_cached[1] + 1
        else:
            estimate = self.estimator.estimate(path, departure_time_s)
            staleness = 0
        self._cache[key] = (estimate, staleness)
        return estimate

    def _extend(
        self, prefix_estimate: CostEstimate, path: Path, departure_time_s: float
    ) -> CostEstimate:
        """Extend a cached prefix estimate by the path's final edge (convolution)."""
        new_edge = path.edge_ids[-1]
        assert self.hybrid_graph is not None
        parameters = self.hybrid_graph.parameters
        arrival = departure_time_s + prefix_estimate.histogram.mean
        unit = self.hybrid_graph.unit_variable(
            new_edge, interval_of(arrival, parameters.alpha_minutes)
        )
        histogram = prefix_estimate.histogram.convolve(unit.cost_distribution())
        return CostEstimate(
            path=path,
            departure_time_s=departure_time_s,
            histogram=histogram,
            method=f"{prefix_estimate.method}+inc",
            decomposition=None,
            entropy=float("nan"),
            timings_s={"total": 0.0},
        )

    def cache_size(self) -> int:
        return len(self._cache)
