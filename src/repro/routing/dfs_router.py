"""Depth-first stochastic routing with a pluggable cost estimator.

This is the "DFS based stochastic routing algorithm" used by the paper's
Figure 18 experiment (after Hua & Pei's probabilistic path queries): given a
source, a destination, a departure time and a travel-time budget, find the
path with the highest probability of arriving within the budget.

:class:`DFSStochasticRouter` is kept as a thin compatibility wrapper over
the batched best-first :class:`~repro.routing.engine.RoutingEngine`: the
public ``find_route`` API (and the two pruning rules below) are unchanged,
but candidate paths are now estimated in batches and bound-scored with one
vectorised CDF kernel call per batch.  The original depth-first inner loop
is retained as :meth:`DFSStochasticRouter.reference_find_route` -- the
reference implementation the equivalence property suite pins the engine
against, and the pre-engine baseline the Figure 18 benchmark compares
throughput to.

Two pruning rules keep the search tractable:

* **budget pruning** -- the probability that the partial path plus an
  optimistic (free-flow) estimate of the remaining distance meets the budget
  is an upper bound on any completion's probability; candidates whose bound
  falls below a caller-given threshold (or strictly below the best
  probability found so far, where a tie cannot improve the answer) are
  discarded;
* **depth pruning** -- paths are not extended beyond ``max_path_edges``
  edges.

The free-flow lower bounds come from a
:class:`~repro.roadnet.routing.ReverseBoundsIndex` shared across queries,
so repeated queries to the same target no longer rebuild a reversed copy of
the road network.

The cost estimator is pluggable (LB, HP or OD), which is exactly how the
paper compares LB-DFS / HP-DFS / OD-DFS.
"""

from __future__ import annotations

import time

from ..exceptions import RoutingError
from ..roadnet.graph import RoadNetwork
from ..roadnet.path import Path
from ..roadnet.routing import ReverseBoundsIndex
from .engine import RouteResult, RoutingEngine
from .incremental import IncrementalCostEstimator
from .queries import SupportsEstimate

__all__ = ["DFSStochasticRouter", "RouteResult"]


class DFSStochasticRouter:
    """Finds the path with the highest probability of meeting a travel-time budget."""

    def __init__(
        self,
        network: RoadNetwork,
        estimator: SupportsEstimate,
        max_path_edges: int = 40,
        probability_threshold: float = 0.0,
        use_incremental: bool = True,
        max_expansions: int = 20000,
        bounds_index: ReverseBoundsIndex | None = None,
    ) -> None:
        self.network = network
        self.engine = RoutingEngine(
            network,
            estimator,
            max_path_edges=max_path_edges,
            probability_threshold=probability_threshold,
            max_expansions=max_expansions,
            use_incremental=use_incremental,
            bounds_index=bounds_index,
        )

    # ------------------------------------------------------------------ #
    # The search limits and the estimator live on the engine; the wrapper
    # reads (and writes) through, so find_route and reference_find_route
    # can never search under different settings.
    @property
    def estimator(self) -> SupportsEstimate:
        """The (possibly incremental-wrapped) estimator both searches use."""
        return self.engine.estimator

    @estimator.setter
    def estimator(self, value: SupportsEstimate) -> None:
        self.engine.estimator = value

    @property
    def max_path_edges(self) -> int:
        return self.engine.max_path_edges

    @max_path_edges.setter
    def max_path_edges(self, value: int) -> None:
        if value < 1:
            raise RoutingError("max_path_edges must be >= 1")
        self.engine.max_path_edges = value

    @property
    def probability_threshold(self) -> float:
        return self.engine.probability_threshold

    @probability_threshold.setter
    def probability_threshold(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise RoutingError("probability_threshold must be in [0, 1]")
        self.engine.probability_threshold = value

    @property
    def max_expansions(self) -> int:
        return self.engine.max_expansions

    @max_expansions.setter
    def max_expansions(self, value: int) -> None:
        if value < 1:
            raise RoutingError("max_expansions must be >= 1")
        self.engine.max_expansions = value

    @property
    def bounds_index(self) -> ReverseBoundsIndex:
        """The shared per-target free-flow bounds (one Dijkstra per target)."""
        return self.engine.bounds_index

    def find_route(
        self,
        source: int,
        target: int,
        departure_time_s: float,
        budget_s: float,
    ) -> RouteResult:
        """Find the source-target path with the highest P(travel time <= budget)."""
        return self.engine.find_route(source, target, departure_time_s, budget_s)

    # ------------------------------------------------------------------ #
    def reference_find_route(
        self,
        source: int,
        target: int,
        departure_time_s: float,
        budget_s: float,
    ) -> RouteResult:
        """The original depth-first search, one scalar estimate per expansion.

        Numerically equivalent to :meth:`find_route` (the property suite
        pins both to the same best probability within 1e-9); kept as the
        pre-engine baseline for benchmarking and as the engine's reference
        implementation.
        """
        if source == target:
            raise RoutingError("source and target must differ")
        if budget_s <= 0:
            raise RoutingError("budget_s must be positive")
        started = time.perf_counter()
        if isinstance(self.estimator, IncrementalCostEstimator):
            # Per-query cache, as in find_route: answers depend only on
            # the query, not on earlier searches.
            self.estimator.clear()
        threshold = self.probability_threshold
        lower_bounds = self.bounds_index.bounds_to(target)
        if source not in lower_bounds:
            return RouteResult(None, 0.0, 0, time.perf_counter() - started)

        best_path: Path | None = None
        best_probability = 0.0
        paths_evaluated = 0
        expansions = 0

        # Depth-first exploration over ("path so far", visited vertices).
        stack: list[tuple[tuple[int, ...], frozenset[int], int]] = []
        for edge in sorted(
            self.network.out_edges(source), key=lambda e: lower_bounds.get(e.target, float("inf"))
        ):
            if edge.target in lower_bounds:
                stack.append(((edge.edge_id,), frozenset({source, edge.target}), edge.target))

        while stack and expansions < self.max_expansions:
            edge_ids, visited, current_vertex = stack.pop()
            expansions += 1
            path = Path(edge_ids)
            estimate = self.estimator.estimate(path, departure_time_s)
            paths_evaluated += 1

            remaining_bound = lower_bounds.get(current_vertex)
            if remaining_bound is None:
                continue
            # prob_at_most is a cumulative-array lookup (no bucket loop), so
            # the pruning bound costs O(log buckets) per expansion.
            optimistic_probability = estimate.histogram.prob_at_most(budget_s - remaining_bound)
            # Budget pruning: discard when the bound *falls below* the
            # threshold (a bound exactly at the threshold survives), or when
            # it cannot strictly beat an already-found best.  A zero bound
            # is hopeless regardless (zero-probability routes are never
            # reported), which keeps infeasible-budget queries cheap.
            if optimistic_probability <= 0.0 or optimistic_probability < threshold:
                continue
            if best_path is not None and optimistic_probability <= best_probability:
                continue

            if current_vertex == target:
                # The target's free-flow bound is zero, so the optimistic
                # probability already *is* P(cost <= budget).
                probability = (
                    optimistic_probability
                    if remaining_bound == 0.0
                    else estimate.histogram.prob_at_most(budget_s)
                )
                if probability <= 0.0:
                    continue
                if best_path is None or probability > best_probability:
                    best_probability = probability
                    best_path = path
                continue

            if len(edge_ids) >= self.max_path_edges:
                continue
            successors = sorted(
                self.network.out_edges(current_vertex),
                key=lambda e: lower_bounds.get(e.target, float("inf")),
                reverse=True,
            )
            for edge in successors:
                if edge.target in visited or edge.target not in lower_bounds:
                    continue
                stack.append(
                    (edge_ids + (edge.edge_id,), visited | {edge.target}, edge.target)
                )

        truncated = bool(stack) and expansions >= self.max_expansions
        elapsed = time.perf_counter() - started
        found_probability = best_probability if best_path is not None else 0.0
        return RouteResult(best_path, found_probability, paths_evaluated, elapsed, truncated)
