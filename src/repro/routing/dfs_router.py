"""Depth-first stochastic routing with a pluggable cost estimator.

This is the "DFS based stochastic routing algorithm" used by the paper's
Figure 18 experiment (after Hua & Pei's probabilistic path queries): given a
source, a destination, a departure time and a travel-time budget, find the
path with the highest probability of arriving within the budget.

Candidate paths are explored with a depth-first search that extends a path
one edge at a time ("path + another edge").  Two pruning rules keep the
search tractable:

* **budget pruning** -- the probability that the partial path plus an
  optimistic (free-flow) estimate of the remaining distance meets the budget
  is an upper bound on any completion's probability; candidates whose bound
  falls below the best probability found so far (or a caller-given
  threshold) are discarded;
* **depth pruning** -- paths are not extended beyond ``max_path_edges``
  edges.

The cost estimator is pluggable (LB, HP or OD), which is exactly how the
paper compares LB-DFS / HP-DFS / OD-DFS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..exceptions import RoutingError
from ..roadnet.graph import RoadNetwork
from ..roadnet.path import Path
from ..roadnet.routing import dijkstra
from .incremental import IncrementalCostEstimator
from .queries import SupportsEstimate


@dataclass(frozen=True)
class RouteResult:
    """The outcome of a stochastic route search."""

    path: Path | None
    probability: float
    paths_evaluated: int
    elapsed_s: float

    @property
    def found(self) -> bool:
        return self.path is not None


class DFSStochasticRouter:
    """Finds the path with the highest probability of meeting a travel-time budget."""

    def __init__(
        self,
        network: RoadNetwork,
        estimator: SupportsEstimate,
        max_path_edges: int = 40,
        probability_threshold: float = 0.0,
        use_incremental: bool = True,
        max_expansions: int = 20000,
    ) -> None:
        if max_path_edges < 1:
            raise RoutingError("max_path_edges must be >= 1")
        if not 0.0 <= probability_threshold <= 1.0:
            raise RoutingError("probability_threshold must be in [0, 1]")
        self.network = network
        self.max_path_edges = max_path_edges
        self.probability_threshold = probability_threshold
        self.max_expansions = max_expansions
        if use_incremental and not isinstance(estimator, IncrementalCostEstimator):
            self.estimator: SupportsEstimate = IncrementalCostEstimator(estimator)
        else:
            self.estimator = estimator

    # ------------------------------------------------------------------ #
    def _free_flow_lower_bounds(self, target: int) -> dict[int, float]:
        """Free-flow travel time from every vertex to the target (reverse Dijkstra)."""
        reverse = RoadNetwork(name=f"{self.network.name}-reversed")
        for vertex in self.network.vertices():
            reverse.add_vertex(vertex.vertex_id, vertex.location.x, vertex.location.y)
        for edge in self.network.edges():
            reverse.add_edge(
                edge.target, edge.source, edge.length_m, edge.speed_limit_kmh, edge.category
            )
        distances, _ = dijkstra(reverse, target)
        return distances

    def find_route(
        self,
        source: int,
        target: int,
        departure_time_s: float,
        budget_s: float,
    ) -> RouteResult:
        """Find the source-target path with the highest P(travel time <= budget)."""
        if source == target:
            raise RoutingError("source and target must differ")
        if budget_s <= 0:
            raise RoutingError("budget_s must be positive")
        started = time.perf_counter()
        if isinstance(self.estimator, IncrementalCostEstimator):
            self.estimator.clear()
        lower_bounds = self._free_flow_lower_bounds(target)
        if source not in lower_bounds:
            return RouteResult(None, 0.0, 0, time.perf_counter() - started)

        best_path: Path | None = None
        best_probability = self.probability_threshold
        paths_evaluated = 0
        expansions = 0

        # Depth-first exploration over ("path so far", visited vertices).
        stack: list[tuple[tuple[int, ...], frozenset[int], int]] = []
        for edge in sorted(
            self.network.out_edges(source), key=lambda e: lower_bounds.get(e.target, float("inf"))
        ):
            if edge.target in lower_bounds:
                stack.append(((edge.edge_id,), frozenset({source, edge.target}), edge.target))

        while stack and expansions < self.max_expansions:
            edge_ids, visited, current_vertex = stack.pop()
            expansions += 1
            path = Path(edge_ids)
            estimate = self.estimator.estimate(path, departure_time_s)
            paths_evaluated += 1

            remaining_bound = lower_bounds.get(current_vertex)
            if remaining_bound is None:
                continue
            # prob_at_most is a cumulative-array lookup (no bucket loop), so
            # the pruning bound costs O(log buckets) per expansion.
            optimistic_probability = estimate.histogram.prob_at_most(budget_s - remaining_bound)
            if optimistic_probability <= best_probability:
                continue

            if current_vertex == target:
                # The target's free-flow bound is zero, so the optimistic
                # probability already *is* P(cost <= budget).
                probability = (
                    optimistic_probability
                    if remaining_bound == 0.0
                    else estimate.histogram.prob_at_most(budget_s)
                )
                if probability > best_probability:
                    best_probability = probability
                    best_path = path
                continue

            if len(edge_ids) >= self.max_path_edges:
                continue
            successors = sorted(
                self.network.out_edges(current_vertex),
                key=lambda e: lower_bounds.get(e.target, float("inf")),
                reverse=True,
            )
            for edge in successors:
                if edge.target in visited or edge.target not in lower_bounds:
                    continue
                stack.append(
                    (edge_ids + (edge.edge_id,), visited | {edge.target}, edge.target)
                )

        elapsed = time.perf_counter() - started
        found_probability = best_probability if best_path is not None else 0.0
        return RouteResult(best_path, found_probability, paths_evaluated, elapsed)
