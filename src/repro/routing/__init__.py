"""Stochastic routing built on top of path cost distribution estimation.

The Figure 18 workload runs on two layers:

* :class:`RoutingEngine` -- batched best-first search: frontier paths are
  estimated in batches (through the estimation service's deduplicated
  ``estimate_batch`` when available) and their budget-pruning bounds are
  scored with one vectorised CDF kernel call per batch;
* :class:`DFSStochasticRouter` -- the original API, now a thin wrapper over
  the engine; its legacy depth-first loop is retained as
  :meth:`~DFSStochasticRouter.reference_find_route` and pinned against the
  engine by the equivalence property suite.
"""

from .queries import ProbabilisticBudgetQuery, first_order_dominates
from .incremental import IncrementalCostEstimator
from .engine import RouteRequest, RouteResponse, RouteResult, RoutingEngine
from .dfs_router import DFSStochasticRouter

__all__ = [
    "DFSStochasticRouter",
    "IncrementalCostEstimator",
    "ProbabilisticBudgetQuery",
    "RouteRequest",
    "RouteResponse",
    "RouteResult",
    "RoutingEngine",
    "first_order_dominates",
]
