"""Stochastic routing built on top of path cost distribution estimation."""

from .queries import ProbabilisticBudgetQuery, first_order_dominates
from .incremental import IncrementalCostEstimator
from .dfs_router import DFSStochasticRouter, RouteResult

__all__ = [
    "DFSStochasticRouter",
    "IncrementalCostEstimator",
    "ProbabilisticBudgetQuery",
    "RouteResult",
    "first_order_dominates",
]
