"""Probabilistic route-quality queries and dominance tests.

The motivating example of the paper (Figure 1(a)) asks: *which path has the
highest probability of arriving within 60 minutes?*  This module provides
the query objects used to compare candidate paths on their estimated cost
distributions, plus the first-order stochastic dominance test that
stochastic routing algorithms use for pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..exceptions import RoutingError
from ..histograms.univariate import Histogram1D, prob_at_most_many
from ..roadnet.path import Path


class SupportsEstimate(Protocol):
    """Anything with an ``estimate(path, departure_time_s)`` returning a cost estimate."""

    def estimate(self, path: Path, departure_time_s: float):  # pragma: no cover - protocol
        ...


def first_order_dominates(first: Histogram1D, second: Histogram1D, n_points: int = 32) -> bool:
    """True when ``first`` first-order stochastically dominates ``second``.

    ``first`` dominates ``second`` when its CDF is everywhere at least as
    large (it is "faster" in probability at every budget), and strictly
    larger somewhere.  The test is evaluated on a grid spanning both
    supports.

    Dominance is strict, so it is irreflexive: when the combined support is
    degenerate (``high <= low``), both histograms are the same point mass
    and neither dominates the other -- the test returns ``False``
    symmetrically rather than letting argument order decide.

    Both CDFs are evaluated on the whole grid with one vectorised kernel
    call each and compared elementwise -- no per-point Python loop.
    """
    low = min(first.min, second.min)
    high = max(first.max, second.max)
    if high <= low:
        return False
    points = np.linspace(low, high, max(2, n_points))
    cdf_first = first.cdf_values(points)
    cdf_second = second.cdf_values(points)
    if np.any(cdf_first < cdf_second - 1e-12):
        return False
    return bool(np.any(cdf_first > cdf_second + 1e-12))


@dataclass(frozen=True)
class ProbabilisticBudgetQuery:
    """A "probability of arriving within the budget" query (Figure 1(a))."""

    departure_time_s: float
    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise RoutingError(f"budget must be positive, got {self.budget}")

    def probability(self, estimator: SupportsEstimate, path: Path) -> float:
        """P(cost of ``path`` <= budget) under the given estimator."""
        estimate = estimator.estimate(path, self.departure_time_s)
        return estimate.histogram.prob_at_most(self.budget)

    def probabilities(
        self, estimator: SupportsEstimate, candidates: Sequence[Path]
    ) -> list[float]:
        """P(cost <= budget) for every candidate, in input order.

        Estimators that expose an ``estimate_batch(paths, departure_time_s)``
        method (e.g. :class:`~repro.service.CostEstimationService`) are asked
        for all candidates at once, so shared sub-work across the candidate
        set is deduplicated and cached; plain estimators are queried one
        path at a time.  Either way, the budget probabilities of the whole
        candidate set are evaluated by one batched CDF kernel call
        (:func:`~repro.histograms.univariate.prob_at_most_many`).
        """
        batch = getattr(estimator, "estimate_batch", None)
        if callable(batch):
            estimates = batch(list(candidates), self.departure_time_s)
        else:
            estimates = [
                estimator.estimate(candidate, self.departure_time_s) for candidate in candidates
            ]
        histograms = [estimate.histogram for estimate in estimates]
        return [float(p) for p in prob_at_most_many(histograms, self.budget)]

    def best_path(
        self, estimator: SupportsEstimate, candidates: Sequence[Path]
    ) -> tuple[Path, float]:
        """The candidate with the highest probability of meeting the budget.

        This is the paper's first usage scenario (Section 4.3): a small set
        of alternative paths is given, and the estimator decides which one
        to take.
        """
        if not candidates:
            raise RoutingError("need at least one candidate path")
        best_path: Path | None = None
        best_probability = -1.0
        for candidate, probability in zip(candidates, self.probabilities(estimator, candidates)):
            if probability > best_probability:
                best_probability = probability
                best_path = candidate
        assert best_path is not None
        return best_path, best_probability
