"""Time-of-day utilities: intervals, parsing, formatting.

The hybrid graph partitions the day into consecutive intervals of
``alpha`` minutes (Section 3.1).  All timestamps in the library are seconds
after midnight; helpers here convert between clock strings, seconds, and
interval indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import MINUTES_PER_DAY, SECONDS_PER_DAY
from .exceptions import ConfigurationError


@dataclass(frozen=True)
class TimeInterval:
    """A half-open time-of-day interval ``[start_s, end_s)`` in seconds after midnight."""

    index: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"interval end must exceed start: [{self.start_s}, {self.end_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def contains(self, time_s: float) -> bool:
        """True if the time of day ``time_s`` (mod 24h) falls in this interval."""
        time_s = time_s % SECONDS_PER_DAY
        return self.start_s <= time_s < self.end_s

    def overlap_s(self, start_s: float, end_s: float) -> float:
        """Length of overlap between this interval and ``[start_s, end_s]`` in seconds."""
        return max(0.0, min(self.end_s, end_s) - max(self.start_s, start_s))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"TimeInterval({format_time(self.start_s)}-{format_time(self.end_s)})"


def interval_of(time_s: float, alpha_minutes: int) -> TimeInterval:
    """The alpha-minute interval containing the time of day ``time_s``."""
    if alpha_minutes <= 0 or MINUTES_PER_DAY % alpha_minutes != 0:
        raise ConfigurationError(
            f"alpha_minutes must be a positive divisor of {MINUTES_PER_DAY}, got {alpha_minutes}"
        )
    time_s = time_s % SECONDS_PER_DAY
    width_s = alpha_minutes * 60.0
    index = int(time_s // width_s)
    return TimeInterval(index, index * width_s, (index + 1) * width_s)


def all_intervals(alpha_minutes: int) -> list[TimeInterval]:
    """All alpha-minute intervals of a day, in order."""
    if alpha_minutes <= 0 or MINUTES_PER_DAY % alpha_minutes != 0:
        raise ConfigurationError(
            f"alpha_minutes must be a positive divisor of {MINUTES_PER_DAY}, got {alpha_minutes}"
        )
    width_s = alpha_minutes * 60.0
    count = MINUTES_PER_DAY // alpha_minutes
    return [TimeInterval(i, i * width_s, (i + 1) * width_s) for i in range(count)]


def parse_time(clock: str) -> float:
    """Parse ``"HH:MM"`` or ``"HH:MM:SS"`` into seconds after midnight."""
    parts = clock.strip().split(":")
    if len(parts) not in (2, 3):
        raise ConfigurationError(f"cannot parse time of day {clock!r}")
    try:
        hours = int(parts[0])
        minutes = int(parts[1])
        seconds = int(parts[2]) if len(parts) == 3 else 0
    except ValueError:
        raise ConfigurationError(f"cannot parse time of day {clock!r}") from None
    if not (0 <= hours < 24 and 0 <= minutes < 60 and 0 <= seconds < 60):
        raise ConfigurationError(f"time of day out of range: {clock!r}")
    return hours * 3600.0 + minutes * 60.0 + seconds


def format_time(time_s: float) -> str:
    """Format seconds after midnight as ``"HH:MM"``."""
    time_s = time_s % SECONDS_PER_DAY
    hours = int(time_s // 3600)
    minutes = int((time_s % 3600) // 60)
    return f"{hours:02d}:{minutes:02d}"
